//! Multi-batch drivers: how a stream of BFS sources is mapped onto a
//! machine (Section 5.3 of the paper).
//!
//! The evaluation compares four execution strategies for `S` sources with
//! batches of at most `W * 64`:
//!
//! * **MS-PBFS** ([`run_mspbfs_batches`]) — one parallel batch at a time,
//!   every worker cooperates on it. Full machine utilization from the
//!   first 64 sources; state memory of a single instance.
//! * **MS-BFS / MS-PBFS (sequential)** ([`run_sequential_instances`]) —
//!   one sequential instance per thread, batches dealt from a shared
//!   queue. Needs `threads × 64` sources to utilize the machine and
//!   `threads ×` the state memory (Figures 2 and 3).
//! * **MS-PBFS (one per socket)** ([`run_one_per_socket`]) — one parallel
//!   instance per NUMA node, used in the paper to bound the cost of
//!   cross-socket parallelization.
//!
//! Utilization is reported against the *ideal makespan* (the longest
//! per-thread busy time) rather than single-core wall time, so the metric
//! reflects the algorithms' scheduling behaviour rather than the fact that
//! this container has one physical core; see DESIGN.md.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pbfs_graph::{stats::ComponentInfo, CsrGraph, VertexId};
use pbfs_sched::{Topology, WorkerPool};

use crate::msbfs::MsBfs;
use crate::mspbfs::MsPbfs;
use crate::options::BfsOptions;
use crate::stats::TraversalStats;
use crate::visitor::{MsVisitor, NoopMsVisitor};

/// Creates per-batch visitors and harvests their results.
///
/// Batch drivers process sources in chunks of at most `W * 64`; consumers
/// get one visitor per chunk and a callback when the chunk completes.
pub trait BatchConsumer<const W: usize>: Sync {
    /// The per-batch visitor type.
    type Visitor: MsVisitor<W>;

    /// Creates the visitor for batch `batch_idx` covering `sources`.
    fn visitor(&self, batch_idx: usize, sources: &[VertexId]) -> Self::Visitor;

    /// Consumes the finished batch.
    fn finish(
        &self,
        batch_idx: usize,
        sources: &[VertexId],
        visitor: Self::Visitor,
        stats: &TraversalStats,
    ) {
        let _ = (batch_idx, sources, visitor, stats);
    }
}

/// Ignores all batches.
pub struct NoopConsumer;

impl<const W: usize> BatchConsumer<W> for NoopConsumer {
    type Visitor = NoopMsVisitor;

    fn visitor(&self, _batch_idx: usize, _sources: &[VertexId]) -> NoopMsVisitor {
        NoopMsVisitor
    }
}

/// Outcome of a batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Measured wall time of the whole run.
    pub wall_ns: u64,
    /// Busy nanoseconds per (virtual) thread. Executor-attributed; on an
    /// oversubscribed host this is noisy — prefer [`Self::utilization`]
    /// which uses the deterministic work units.
    pub per_thread_busy_ns: Vec<u64>,
    /// Work units (adjacency entries scanned + states updated) per thread,
    /// attributed to the thread's *own* task queue (deterministic; see the
    /// module docs and DESIGN.md).
    pub per_thread_work: Vec<u64>,
    /// Dynamic BFS state bytes allocated by the strategy.
    pub state_bytes: usize,
    /// Number of batches processed.
    pub batches: usize,
    /// Total `(vertex, BFS)` discoveries across all batches.
    pub total_discovered: u64,
}

impl BatchReport {
    /// Ideal-makespan utilization in `[0, 1]` based on deterministic work
    /// units: total work divided by `threads × max per-thread work` — the
    /// Figure 2 metric, independent of how the host OS scheduled the
    /// (possibly oversubscribed) threads.
    pub fn utilization(&self) -> f64 {
        Self::ratio(&self.per_thread_work)
    }

    /// Utilization from measured busy time (meaningful only on hardware
    /// with at least as many cores as threads).
    pub fn utilization_busy(&self) -> f64 {
        Self::ratio(&self.per_thread_busy_ns)
    }

    fn ratio(values: &[u64]) -> f64 {
        let max = values.iter().copied().max().unwrap_or(0);
        if max == 0 || values.is_empty() {
            return 0.0;
        }
        let sum: u64 = values.iter().sum();
        sum as f64 / (values.len() as f64 * max as f64)
    }

    /// Ideal makespan in work units: the largest per-thread work. Models
    /// the parallel completion time on non-oversubscribed hardware.
    pub fn makespan_work(&self) -> u64 {
        self.per_thread_work.iter().copied().max().unwrap_or(0)
    }

    /// Total work units — the sequential-equivalent cost. The ratio
    /// `total_work / makespan_work` is the modeled speedup (Figure 11).
    pub fn total_work(&self) -> u64 {
        self.per_thread_work.iter().sum()
    }

    /// Modeled speedup over a single thread: `total_work / makespan_work`.
    pub fn modeled_speedup(&self) -> f64 {
        let makespan = self.makespan_work();
        if makespan == 0 {
            return 0.0;
        }
        self.total_work() as f64 / makespan as f64
    }
}

/// Work units of one traversal, per worker queue (visited neighbors plus
/// updated states, owner-attributed).
fn work_per_worker(stats: &TraversalStats, workers: usize) -> Vec<u64> {
    let mut out = vec![0u64; workers];
    for it in &stats.iterations {
        for (w, s) in it.per_worker.iter().enumerate() {
            if w < workers {
                out[w] += s.visited_neighbors + s.updated_states;
            }
        }
    }
    out
}

/// Splits `sources` into chunks of at most `W * 64`.
fn batches<const W: usize>(sources: &[VertexId]) -> Vec<&[VertexId]> {
    sources.chunks(W * 64).collect()
}

/// One MS-PBFS batch at a time on `pool`; all workers cooperate.
pub fn run_mspbfs_batches<const W: usize, C: BatchConsumer<W>>(
    g: &CsrGraph,
    pool: &WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
    consumer: &C,
) -> BatchReport {
    let opts = opts.instrumented();
    let start = Instant::now();
    let workers = pool.num_workers();
    let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
    let mut busy = vec![0u64; workers];
    let mut work = vec![0u64; workers];
    let mut total_discovered = 0u64;
    let chunks = batches::<W>(sources);
    for (i, chunk) in chunks.iter().enumerate() {
        let visitor = consumer.visitor(i, chunk);
        let stats = bfs.run(g, pool, chunk, &opts, &visitor);
        for (w, b) in stats.busy_per_worker().into_iter().enumerate() {
            busy[w] += b;
        }
        for (w, u) in work_per_worker(&stats, workers).into_iter().enumerate() {
            work[w] += u;
        }
        total_discovered += stats.total_discovered;
        consumer.finish(i, chunk, visitor, &stats);
    }
    BatchReport {
        wall_ns: start.elapsed().as_nanos() as u64,
        per_thread_busy_ns: busy,
        per_thread_work: work,
        state_bytes: bfs.state_bytes(),
        batches: chunks.len(),
        total_discovered,
    }
}

/// One sequential MS-BFS instance per thread, batch `i` statically
/// assigned to thread `i % threads`. This is how the paper models MS-BFS
/// (and "MS-PBFS (sequential)") on a multi-core machine: "every 64 sources
/// one more thread can be used" (Figure 2). Static assignment keeps the
/// per-thread work deterministic on an oversubscribed host.
pub fn run_sequential_instances<const W: usize, C: BatchConsumer<W>>(
    g: &CsrGraph,
    threads: usize,
    sources: &[VertexId],
    opts: &BfsOptions,
    consumer: &C,
) -> BatchReport {
    assert!(threads > 0);
    let start = Instant::now();
    let chunks = batches::<W>(sources);
    let mut busy = vec![0u64; threads];
    let mut work = vec![0u64; threads];
    let mut discovered = vec![0u64; threads];
    let state_bytes = AtomicUsize::new(0);

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (t, (busy_slot, (work_slot, disc_slot))) in busy
            .iter_mut()
            .zip(work.iter_mut().zip(discovered.iter_mut()))
            .enumerate()
        {
            let chunks = &chunks;
            let state_bytes = &state_bytes;
            handles.push(s.spawn(move |_| {
                let mut bfs: MsBfs<W> = MsBfs::new(g.num_vertices());
                state_bytes.fetch_add(bfs.state_bytes(), Ordering::Relaxed);
                for i in (t..chunks.len()).step_by(threads) {
                    let chunk = chunks[i];
                    let visitor = consumer.visitor(i, chunk);
                    let t0 = Instant::now();
                    let stats = bfs.run(g, chunk, opts, &visitor);
                    *busy_slot += t0.elapsed().as_nanos() as u64;
                    // A sequential instance is its own single "queue".
                    *work_slot += work_per_worker(&stats, 1)[0];
                    *disc_slot += stats.total_discovered;
                    consumer.finish(i, chunk, visitor, &stats);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect("batch worker panicked");

    BatchReport {
        wall_ns: start.elapsed().as_nanos() as u64,
        per_thread_busy_ns: busy,
        per_thread_work: work,
        state_bytes: state_bytes.into_inner(),
        batches: chunks.len(),
        total_discovered: discovered.iter().sum(),
    }
}

/// One MS-PBFS instance per NUMA node of `topology`; each node's workers
/// cooperate on that node's current batch, nodes deal batches from a
/// shared queue.
pub fn run_one_per_socket<const W: usize, C: BatchConsumer<W>>(
    g: &CsrGraph,
    topology: &Topology,
    sources: &[VertexId],
    opts: &BfsOptions,
    consumer: &C,
) -> BatchReport {
    let start = Instant::now();
    let opts = opts.instrumented();
    let chunks = batches::<W>(sources);
    let next_batch = AtomicUsize::new(0);
    let nodes = topology.num_nodes();
    // (busy, work, discovered, state) per node.
    let mut per_node: Vec<(Vec<u64>, Vec<u64>, u64, usize)> = Vec::new();
    per_node.resize_with(nodes, || (Vec::new(), Vec::new(), 0, 0));

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (node, slot) in per_node.iter_mut().enumerate() {
            let node_workers = topology.workers_on(node).len();
            if node_workers == 0 {
                continue;
            }
            let chunks = &chunks;
            let next_batch = &next_batch;
            let opts = &opts;
            handles.push(s.spawn(move |_| {
                let pool = WorkerPool::new(node_workers);
                let mut bfs: MsPbfs<W> = MsPbfs::new(g.num_vertices());
                let mut busy = vec![0u64; node_workers];
                let mut work = vec![0u64; node_workers];
                let mut discovered = 0u64;
                loop {
                    let i = next_batch.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let chunk = chunks[i];
                    let visitor = consumer.visitor(i, chunk);
                    let stats = bfs.run(g, &pool, chunk, opts, &visitor);
                    for (w, b) in stats.busy_per_worker().into_iter().enumerate() {
                        busy[w] += b;
                    }
                    for (w, u) in work_per_worker(&stats, node_workers)
                        .into_iter()
                        .enumerate()
                    {
                        work[w] += u;
                    }
                    discovered += stats.total_discovered;
                    consumer.finish(i, chunk, visitor, &stats);
                }
                *slot = (busy, work, discovered, bfs.state_bytes());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect("socket worker panicked");

    let mut busy = Vec::new();
    let mut work = Vec::new();
    let mut total_discovered = 0u64;
    let mut state = 0usize;
    for (b, w, d, st) in per_node {
        busy.extend(b);
        work.extend(w);
        total_discovered += d;
        state += st;
    }
    BatchReport {
        wall_ns: start.elapsed().as_nanos() as u64,
        per_thread_busy_ns: busy,
        per_thread_work: work,
        state_bytes: state,
        batches: chunks.len(),
        total_discovered,
    }
}

/// Total edges a Graph500-style run "traverses": for each source, the
/// undirected edge count of its connected component. The GTEPS numerator.
pub fn total_traversed_edges(components: &ComponentInfo, sources: &[VertexId]) -> u64 {
    sources
        .iter()
        .map(|&s| components.edges_from_source(s))
        .sum()
}

/// Converts traversed edges and a duration into GTEPS (billions of
/// traversed edges per second).
pub fn gteps(edges: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        return 0.0;
    }
    edges as f64 / wall_ns as f64 // edges/ns == billion edges/s
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;

    fn graph_and_sources() -> (CsrGraph, Vec<VertexId>) {
        let g = gen::Kronecker::graph500(9).seed(21).generate();
        let sources: Vec<u32> = (0..96).map(|i| (i * 5) % 512).collect();
        (g, sources)
    }

    #[test]
    fn all_strategies_discover_the_same_amount() {
        let (g, sources) = graph_and_sources();
        let opts = BfsOptions::default();
        let pool = WorkerPool::new(4);
        let a = run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &NoopConsumer);
        let b = run_sequential_instances::<1, _>(&g, 4, &sources, &opts, &NoopConsumer);
        let c =
            run_one_per_socket::<1, _>(&g, &Topology::new(2, 4), &sources, &opts, &NoopConsumer);
        assert_eq!(a.total_discovered, b.total_discovered);
        assert_eq!(a.total_discovered, c.total_discovered);
        assert_eq!(a.batches, 2);
        assert_eq!(b.batches, 2);
    }

    #[test]
    fn sequential_instances_memory_scales_with_threads() {
        let (g, sources) = graph_and_sources();
        let opts = BfsOptions::default();
        let one = run_sequential_instances::<1, _>(&g, 1, &sources, &opts, &NoopConsumer);
        let four = run_sequential_instances::<1, _>(&g, 4, &sources, &opts, &NoopConsumer);
        assert_eq!(four.state_bytes, 4 * one.state_bytes);
        let pool = WorkerPool::new(4);
        let par = run_mspbfs_batches::<1, _>(&g, &pool, &sources, &opts, &NoopConsumer);
        // MS-PBFS adds three frontier-summary bitmaps on top of the
        // sequential state, but stays independent of the thread count.
        let summaries =
            3 * crate::memory::MemoryModel::graph500(g.num_vertices()).frontier_summary_bytes();
        assert_eq!(
            par.state_bytes,
            one.state_bytes + summaries,
            "MS-PBFS state independent of threads"
        );
    }

    #[test]
    fn utilization_staircase_for_sequential_instances() {
        // 2 batches on 8 threads: at most 2 threads can be busy — the
        // Figure 2 limitation.
        let (g, sources) = graph_and_sources();
        let report = run_sequential_instances::<1, _>(
            &g,
            8,
            &sources,
            &BfsOptions::default(),
            &NoopConsumer,
        );
        let active = report.per_thread_work.iter().filter(|&&w| w > 0).count();
        assert_eq!(active, 2, "exactly the first two threads get batches");
        assert!(
            report.utilization() <= 0.26,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn mspbfs_batches_utilize_all_workers() {
        let (g, sources) = graph_and_sources();
        let pool = WorkerPool::new(4);
        // 512 vertices with a small split size yield plenty of tasks for
        // all four queues even on a single batch of 64 sources.
        let opts = BfsOptions::default().with_split_size(32);
        let report = run_mspbfs_batches::<1, _>(&g, &pool, &sources[..64], &opts, &NoopConsumer);
        let active = report.per_thread_work.iter().filter(|&&w| w > 0).count();
        assert_eq!(
            active, 4,
            "every worker queue holds work for a single batch"
        );
        assert!(
            report.utilization() > 0.5,
            "utilization {}",
            report.utilization()
        );
    }

    #[test]
    fn consumer_sees_every_batch() {
        use std::sync::Mutex;

        struct Recorder(Mutex<Vec<(usize, usize)>>);
        impl BatchConsumer<1> for Recorder {
            type Visitor = NoopMsVisitor;
            fn visitor(&self, _i: usize, _s: &[VertexId]) -> NoopMsVisitor {
                NoopMsVisitor
            }
            fn finish(&self, i: usize, s: &[VertexId], _v: NoopMsVisitor, stats: &TraversalStats) {
                assert!(stats.total_discovered >= s.len() as u64);
                self.0.lock().unwrap().push((i, s.len()));
            }
        }

        let (g, sources) = graph_and_sources();
        let rec = Recorder(Mutex::new(Vec::new()));
        run_sequential_instances::<1, _>(&g, 3, &sources, &BfsOptions::default(), &rec);
        let mut seen = rec.0.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 64), (1, 32)]);
    }

    #[test]
    fn traversed_edges_and_gteps() {
        let g = gen::disjoint_union(&[&gen::complete(4), &gen::path(3)]);
        let comps = ComponentInfo::compute(&g);
        // complete(4) has 6 edges, path(3) has 2.
        assert_eq!(total_traversed_edges(&comps, &[0, 5]), 8);
        assert_eq!(total_traversed_edges(&comps, &[0, 0]), 12);
        assert!((gteps(2_000_000_000, 1_000_000_000) - 2.0).abs() < 1e-12);
        assert_eq!(gteps(5, 0), 0.0);
    }

    #[test]
    fn empty_thread_report_is_safe() {
        let r = BatchReport {
            wall_ns: 0,
            per_thread_busy_ns: vec![],
            per_thread_work: vec![],
            state_bytes: 0,
            batches: 0,
            total_discovered: 0,
        };
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.makespan_work(), 0);
        assert_eq!(r.modeled_speedup(), 0.0);
    }
}
