//! Graph500-style BFS result validation.
//!
//! The Graph500 benchmark (which the paper's evaluation follows) validates
//! each BFS by checking the returned parent tree rather than re-running a
//! reference traversal. These checks catch every class of bug the parallel
//! algorithms could introduce: lost updates (unreached vertices), duplicate
//! discoveries (level mismatches), and phantom edges.

use pbfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};

use crate::UNREACHED;

/// Why a BFS result failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The source must be its own parent at distance 0.
    BadSource {
        /// Offending source vertex.
        source: VertexId,
    },
    /// A vertex has a parent but no distance, or vice versa.
    Inconsistent {
        /// Offending vertex.
        vertex: VertexId,
    },
    /// A tree edge does not exist in the graph.
    PhantomEdge {
        /// Child whose parent link is not a graph edge.
        vertex: VertexId,
        /// The claimed parent.
        parent: VertexId,
    },
    /// A child's distance is not exactly its parent's plus one.
    LevelMismatch {
        /// Offending vertex.
        vertex: VertexId,
        /// Its distance.
        dist: u32,
        /// Its parent's distance.
        parent_dist: u32,
    },
    /// An edge of the graph spans more than one level — some vertex was
    /// discovered too late.
    EdgeSpansLevels {
        /// Endpoint one.
        u: VertexId,
        /// Endpoint two.
        v: VertexId,
    },
    /// A vertex in the source's component was not reached.
    Unreached {
        /// The missed vertex.
        vertex: VertexId,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadSource { source } => {
                write!(f, "source {source} is not its own parent at distance 0")
            }
            ValidationError::Inconsistent { vertex } => {
                write!(f, "vertex {vertex}: parent/distance reachability disagree")
            }
            ValidationError::PhantomEdge { vertex, parent } => {
                write!(f, "tree edge ({parent}, {vertex}) is not a graph edge")
            }
            ValidationError::LevelMismatch {
                vertex,
                dist,
                parent_dist,
            } => {
                write!(
                    f,
                    "vertex {vertex} at level {dist}, parent at {parent_dist}"
                )
            }
            ValidationError::EdgeSpansLevels { u, v } => {
                write!(f, "graph edge ({u}, {v}) spans more than one BFS level")
            }
            ValidationError::Unreached { vertex } => {
                write!(
                    f,
                    "vertex {vertex} is connected to the source but unreached"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a BFS tree: `parents` and `distances` as produced by
/// [`crate::visitor::ParentVisitor`] / [`crate::visitor::DistanceVisitor`].
///
/// Checks (Graph500 §Validation):
/// 1. the source is its own parent at distance 0;
/// 2. reached-ness agrees between parents and distances;
/// 3. every tree edge exists in the graph;
/// 4. every tree edge spans exactly one level;
/// 5. every graph edge spans at most one level (and never connects a
///    reached vertex to an unreached one);
/// 6. every vertex connected to a reached vertex is reached.
pub fn validate_tree(
    g: &CsrGraph,
    source: VertexId,
    parents: &[VertexId],
    distances: &[u32],
) -> Result<(), ValidationError> {
    let n = g.num_vertices();
    assert_eq!(parents.len(), n);
    assert_eq!(distances.len(), n);

    if parents[source as usize] != source || distances[source as usize] != 0 {
        return Err(ValidationError::BadSource { source });
    }

    for v in 0..n as VertexId {
        let p = parents[v as usize];
        let d = distances[v as usize];
        let reached = d != UNREACHED;
        if (p == INVALID_VERTEX) == reached {
            return Err(ValidationError::Inconsistent { vertex: v });
        }
        if !reached || v == source {
            continue;
        }
        if !g.has_edge(p, v) {
            return Err(ValidationError::PhantomEdge {
                vertex: v,
                parent: p,
            });
        }
        let pd = distances[p as usize];
        if pd == UNREACHED || d != pd + 1 {
            return Err(ValidationError::LevelMismatch {
                vertex: v,
                dist: d,
                parent_dist: pd,
            });
        }
    }

    // Each graph edge spans ≤ 1 level; reached vertices cannot neighbor
    // unreached ones.
    for (u, v) in g.edges() {
        let (du, dv) = (distances[u as usize], distances[v as usize]);
        match (du == UNREACHED, dv == UNREACHED) {
            (true, true) => {}
            (false, false) => {
                if du.abs_diff(dv) > 1 {
                    return Err(ValidationError::EdgeSpansLevels { u, v });
                }
            }
            (true, false) => return Err(ValidationError::Unreached { vertex: u }),
            (false, true) => return Err(ValidationError::Unreached { vertex: v }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use pbfs_graph::gen;

    fn valid_tree(g: &CsrGraph, src: VertexId) -> (Vec<VertexId>, Vec<u32>) {
        let t = textbook::bfs(g, src);
        (t.parents, t.distances)
    }

    #[test]
    fn oracle_trees_validate() {
        for g in [
            gen::path(9),
            gen::grid(4, 4),
            gen::Kronecker::graph500(8).seed(1).generate(),
        ] {
            let (p, d) = valid_tree(&g, 0);
            validate_tree(&g, 0, &p, &d).unwrap();
        }
    }

    #[test]
    fn disconnected_graph_validates() {
        let g = gen::disjoint_union(&[&gen::path(3), &gen::path(3)]);
        let (p, d) = valid_tree(&g, 0);
        validate_tree(&g, 0, &p, &d).unwrap();
    }

    #[test]
    fn detects_bad_source() {
        let g = gen::path(3);
        let (mut p, d) = valid_tree(&g, 0);
        p[0] = 1;
        assert_eq!(
            validate_tree(&g, 0, &p, &d),
            Err(ValidationError::BadSource { source: 0 })
        );
    }

    #[test]
    fn detects_inconsistency() {
        let g = gen::path(3);
        let (mut p, d) = valid_tree(&g, 0);
        p[2] = INVALID_VERTEX; // distance says reached, parent says not
        assert_eq!(
            validate_tree(&g, 0, &p, &d),
            Err(ValidationError::Inconsistent { vertex: 2 })
        );
    }

    #[test]
    fn detects_phantom_edge() {
        let g = gen::path(4);
        let (mut p, d) = valid_tree(&g, 0);
        p[3] = 0; // (0, 3) is not an edge of the path
        assert_eq!(
            validate_tree(&g, 0, &p, &d),
            Err(ValidationError::PhantomEdge {
                vertex: 3,
                parent: 0
            })
        );
    }

    #[test]
    fn detects_level_mismatch() {
        let g = gen::cycle(6);
        let (p, mut d) = valid_tree(&g, 0);
        d[2] = 4; // should be 2
        assert!(matches!(
            validate_tree(&g, 0, &p, &d),
            Err(ValidationError::LevelMismatch { vertex: 2, .. })
                | Err(ValidationError::EdgeSpansLevels { .. })
        ));
    }

    #[test]
    fn detects_unreached_vertex() {
        let g = gen::path(4);
        let (mut p, mut d) = valid_tree(&g, 0);
        d[3] = UNREACHED;
        p[3] = INVALID_VERTEX;
        assert_eq!(
            validate_tree(&g, 0, &p, &d),
            Err(ValidationError::Unreached { vertex: 3 })
        );
    }

    #[test]
    fn error_messages_render() {
        let e = ValidationError::LevelMismatch {
            vertex: 7,
            dist: 3,
            parent_dist: 1,
        };
        assert!(e.to_string().contains("vertex 7"));
    }
}
