//! Centrality measures beyond closeness: Brandes betweenness and harmonic
//! centrality.
//!
//! Closeness (in [`crate::analytics`]) is the paper's motivating APSP
//! workload; this module rounds out the centrality toolbox that a graph
//! analytics user would expect on top of the BFS substrate. Betweenness
//! uses Brandes' algorithm (one BFS + one backward sweep per source),
//! parallelized over sources with per-thread partial scores.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use pbfs_graph::{CsrGraph, VertexId};

use crate::batch::{run_mspbfs_batches, BatchConsumer};
use crate::options::BfsOptions;
use crate::stats::TraversalStats;
use crate::visitor::MsVisitor;
use crate::UNREACHED;

/// Per-source workspace of Brandes' algorithm, reusable across sources.
struct BrandesState {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    order: Vec<VertexId>,
    queue: VecDeque<VertexId>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHED; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    /// Accumulates the dependency contributions of `source` into `bc`.
    fn accumulate(&mut self, g: &CsrGraph, source: VertexId, bc: &mut [f64]) {
        self.dist.fill(UNREACHED);
        self.sigma.fill(0.0);
        self.delta.fill(0.0);
        self.order.clear();
        self.queue.clear();

        self.dist[source as usize] = 0;
        self.sigma[source as usize] = 1.0;
        self.queue.push_back(source);
        while let Some(v) = self.queue.pop_front() {
            self.order.push(v);
            let dv = self.dist[v as usize];
            for &w in g.neighbors(v) {
                let wi = w as usize;
                if self.dist[wi] == UNREACHED {
                    self.dist[wi] = dv + 1;
                    self.queue.push_back(w);
                }
                if self.dist[wi] == dv + 1 {
                    self.sigma[wi] += self.sigma[v as usize];
                }
            }
        }
        // Backward sweep in reverse BFS order; predecessors are recognized
        // by distance, so no predecessor lists are stored.
        for &w in self.order.iter().rev() {
            let dw = self.dist[w as usize];
            if dw == 0 {
                continue;
            }
            let coeff = (1.0 + self.delta[w as usize]) / self.sigma[w as usize];
            for &v in g.neighbors(w) {
                if self.dist[v as usize] + 1 == dw {
                    self.delta[v as usize] += self.sigma[v as usize] * coeff;
                }
            }
            if w != source {
                bc[w as usize] += self.delta[w as usize];
            }
        }
    }
}

/// Exact betweenness centrality from the given sources (pass every vertex
/// for the full measure). Undirected convention: scores are halved, like
/// NetworkX with `normalized=False` divided by 2.
pub fn betweenness_centrality(g: &CsrGraph, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0; n];
    let mut state = BrandesState::new(n);
    for &s in sources {
        state.accumulate(g, s, &mut bc);
    }
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// [`betweenness_centrality`] parallelized over sources: `threads` workers
/// pull sources from a shared counter and merge per-thread partial scores.
/// Results are deterministic up to floating-point summation order.
pub fn betweenness_centrality_parallel(
    g: &CsrGraph,
    sources: &[VertexId],
    threads: usize,
) -> Vec<f64> {
    assert!(threads > 0);
    let n = g.num_vertices();
    let next = AtomicUsize::new(0);
    let mut partials: Vec<Vec<f64>> = vec![vec![0.0; n]; threads];
    crossbeam::thread::scope(|s| {
        for partial in partials.iter_mut() {
            let next = &next;
            s.spawn(move |_| {
                let mut state = BrandesState::new(n);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= sources.len() {
                        break;
                    }
                    state.accumulate(g, sources[i], partial);
                }
            });
        }
    })
    .expect("betweenness worker panicked");
    let mut bc = vec![0.0; n];
    for partial in partials {
        for (acc, p) in bc.iter_mut().zip(partial) {
            *acc += p;
        }
    }
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

/// Accumulates `Σ 1/d` per source of a multi-source batch — harmonic
/// centrality, which unlike closeness is well-defined on disconnected
/// graphs.
pub struct HarmonicAccumulator<const W: usize> {
    // f64 stored as bits; one slot per batch source, updated via CAS.
    sums: Vec<std::sync::atomic::AtomicU64>,
}

impl<const W: usize> HarmonicAccumulator<W> {
    /// Creates an accumulator for `batch` sources.
    pub fn new(batch: usize) -> Self {
        assert!(batch <= W * 64);
        let mut sums = Vec::with_capacity(batch);
        sums.resize_with(batch, || std::sync::atomic::AtomicU64::new(0f64.to_bits()));
        Self { sums }
    }

    /// Harmonic sum of source `i`.
    pub fn sum(&self, i: usize) -> f64 {
        f64::from_bits(self.sums[i].load(Ordering::Relaxed))
    }

    fn add(&self, i: usize, v: f64) {
        let slot = &self.sums[i];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl<const W: usize> MsVisitor<W> for HarmonicAccumulator<W> {
    #[inline]
    fn on_found(&self, _v: VertexId, dist: u32, bfs_set: pbfs_bitset::Bits<W>) {
        if dist == 0 {
            return;
        }
        let inv = 1.0 / dist as f64;
        for i in bfs_set.ones() {
            if i < self.sums.len() {
                self.add(i, inv);
            }
        }
    }
}

struct HarmonicConsumer<'a, const W: usize> {
    out: &'a [std::sync::atomic::AtomicU64],
}

impl<const W: usize> BatchConsumer<W> for HarmonicConsumer<'_, W> {
    type Visitor = HarmonicAccumulator<W>;

    fn visitor(&self, _i: usize, sources: &[VertexId]) -> Self::Visitor {
        HarmonicAccumulator::new(sources.len())
    }

    fn finish(
        &self,
        batch_idx: usize,
        sources: &[VertexId],
        visitor: Self::Visitor,
        _stats: &TraversalStats,
    ) {
        for i in 0..sources.len() {
            self.out[batch_idx * W * 64 + i].store(visitor.sum(i).to_bits(), Ordering::Relaxed);
        }
    }
}

/// Harmonic centrality `Σ_{u≠s} 1/d(s, u)` for every source, via batched
/// MS-PBFS.
pub fn harmonic_centrality<const W: usize>(
    g: &CsrGraph,
    pool: &pbfs_sched::WorkerPool,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(sources.len());
    out.resize_with(sources.len(), || {
        std::sync::atomic::AtomicU64::new(0f64.to_bits())
    });
    let consumer: HarmonicConsumer<'_, W> = HarmonicConsumer { out: &out };
    run_mspbfs_batches::<W, _>(g, pool, sources, opts, &consumer);
    out.into_iter()
        .map(|a| f64::from_bits(a.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbfs_graph::gen;
    use pbfs_sched::WorkerPool;

    #[test]
    fn betweenness_of_path() {
        // Path 0-1-2-3-4: interior vertices carry traffic.
        // BC(v) for a path of n vertices: (v)(n-1-v) pairs pass through v.
        let g = gen::path(5);
        let sources: Vec<u32> = (0..5).collect();
        let bc = betweenness_centrality(&g, &sources);
        assert_eq!(bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn betweenness_of_star() {
        // Star with center 0 and 4 leaves: every leaf pair routes through
        // the center → C(4,2) = 6 pairs.
        let g = gen::star(5);
        let sources: Vec<u32> = (0..5).collect();
        let bc = betweenness_centrality(&g, &sources);
        assert_eq!(bc[0], 6.0);
        assert!(bc[1..].iter().all(|&b| b == 0.0));
    }

    #[test]
    fn betweenness_with_equal_shortest_paths() {
        // Cycle of 4: each vertex lies on half of the shortest paths
        // between its two opposite neighbors (two equal paths).
        let g = gen::cycle(4);
        let sources: Vec<u32> = (0..4).collect();
        let bc = betweenness_centrality(&g, &sources);
        assert_eq!(bc, vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::uniform_connected(150, 300, 7);
        let sources: Vec<u32> = (0..150).collect();
        let seq = betweenness_centrality(&g, &sources);
        let par = betweenness_centrality_parallel(&g, &sources, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn betweenness_on_disconnected_graph() {
        let g = gen::disjoint_union(&[&gen::path(3), &gen::path(3)]);
        let sources: Vec<u32> = (0..6).collect();
        let bc = betweenness_centrality(&g, &sources);
        assert_eq!(bc, vec![0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn harmonic_of_star_center() {
        let g = gen::star(5);
        let pool = WorkerPool::new(2);
        let sources: Vec<u32> = (0..5).collect();
        let h = harmonic_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
        // Center: 4 vertices at distance 1 → 4. Leaf: 1 + 3 * 1/2 = 2.5.
        assert!((h[0] - 4.0).abs() < 1e-12);
        for &leaf in &h[1..] {
            assert!((leaf - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn harmonic_handles_disconnected() {
        let g = pbfs_graph::CsrGraph::from_edges(3, &[(0, 1)]);
        let pool = WorkerPool::new(1);
        let h = harmonic_centrality::<1>(&g, &pool, &[0, 2], &BfsOptions::default());
        assert!((h[0] - 1.0).abs() < 1e-12);
        assert_eq!(h[1], 0.0);
    }

    #[test]
    fn harmonic_matches_brute_force() {
        let g = gen::social_network(300, 10, 5);
        let pool = WorkerPool::new(3);
        let sources: Vec<u32> = (0..100).collect();
        let h = harmonic_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
        for (i, &s) in sources.iter().enumerate().step_by(17) {
            let expect: f64 = crate::textbook::distances(&g, s)
                .iter()
                .filter(|&&d| d != UNREACHED && d > 0)
                .map(|&d| 1.0 / d as f64)
                .sum();
            assert!(
                (h[i] - expect).abs() < 1e-9,
                "source {s}: {} vs {expect}",
                h[i]
            );
        }
    }
}
