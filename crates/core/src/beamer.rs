//! Sequential direction-optimizing BFS baselines (Beamer et al.).
//!
//! Section 5.2 of the paper compares SMS-PBFS against three sequential
//! Beamer variants:
//!
//! * [`QueueKind::Gapbs`] — a port of the reference implementation from the
//!   GAP Benchmark Suite: parent-array semantics, sparse sliding queue in
//!   the top-down phase, plain (non-chunk-skipped) bottom-up scan, GAPBS
//!   heuristic constants.
//! * [`QueueKind::Sparse`] — Beamer's algorithm re-implemented on this
//!   crate's graph and bit-vector structures with a sparse top-down queue
//!   and the chunk-skipped bottom-up scan shared with SMS-PBFS (bit).
//! * [`QueueKind::Dense`] — the same with a dense bit-array frontier in the
//!   top-down phase as well.
//!
//! All variants produce hop distances and per-iteration statistics.

use pbfs_bitset::BitVec;
use pbfs_graph::{CsrGraph, VertexId};

use crate::options::BfsOptions;
use crate::policy::{Direction, DirectionPolicy, FrontierState};
use crate::stats::{IterationStats, TraversalStats};
use crate::visitor::SsVisitor;
use crate::UNREACHED;

/// Frontier representation of the top-down phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// GAPBS reference port.
    Gapbs,
    /// Sparse vector frontier on our structures.
    Sparse,
    /// Dense bit-array frontier on our structures.
    Dense,
}

/// A sequential direction-optimizing BFS.
pub struct DirectionOptBfs {
    /// Top-down frontier representation.
    pub kind: QueueKind,
    /// Direction-switching policy ([`QueueKind::Gapbs`] always uses the
    /// GAPBS constants α=15, β=18 regardless).
    pub policy: DirectionPolicy,
    /// Chunk-skip the bottom-up scan (ignored by `Gapbs`, which scans
    /// plainly like the reference code).
    pub chunk_skip: bool,
}

impl DirectionOptBfs {
    /// A variant with default policy and chunk skipping on.
    pub fn new(kind: QueueKind) -> Self {
        Self {
            kind,
            policy: DirectionPolicy::default(),
            chunk_skip: true,
        }
    }

    /// Runs the BFS and returns hop distances.
    pub fn run(&self, g: &CsrGraph, source: VertexId) -> Vec<u32> {
        self.run_with(g, source, &crate::visitor::NoopVisitor).0
    }

    /// Runs the BFS, returning distances, firing `visitor`, and collecting
    /// per-iteration statistics.
    pub fn run_with(
        &self,
        g: &CsrGraph,
        source: VertexId,
        visitor: &impl SsVisitor,
    ) -> (Vec<u32>, TraversalStats) {
        self.run_with_opts(g, source, &BfsOptions::default(), visitor)
    }

    /// Like [`Self::run_with`], but carrying [`BfsOptions`] the way every
    /// other kernel does. The variant's own knobs (queue kind, policy,
    /// chunk skipping) stay on the struct; from `opts` this baseline
    /// honors `query_set` — so engine-driven runs emit Iteration trace
    /// spans causally linked to their batch — and `max_iterations`.
    pub fn run_with_opts(
        &self,
        g: &CsrGraph,
        source: VertexId,
        opts: &BfsOptions,
        visitor: &impl SsVisitor,
    ) -> (Vec<u32>, TraversalStats) {
        let n = g.num_vertices();
        assert!((source as usize) < n, "source out of range");
        let start = std::time::Instant::now();
        let qset = opts.query_set;
        let rec = pbfs_telemetry::recorder();
        let policy = match self.kind {
            QueueKind::Gapbs => DirectionPolicy::Heuristic {
                alpha: 15.0,
                beta: 18.0,
            },
            _ => self.policy,
        };
        let chunk_skip = self.kind != QueueKind::Gapbs && self.chunk_skip;

        let mut dist = vec![UNREACHED; n];
        dist[source as usize] = 0;
        visitor.on_found(source, 0);

        // Sparse and dense frontier representations; which pair is live
        // depends on the variant and current direction.
        let mut frontier_sparse: Vec<VertexId> = vec![source];
        let mut next_sparse: Vec<VertexId> = Vec::new();
        let mut frontier_dense = BitVec::new(n);
        let mut next_dense = BitVec::new(n);
        let dense_top_down = self.kind == QueueKind::Dense;
        if dense_top_down {
            frontier_dense.set(source as usize);
        }

        let mut stats = TraversalStats::default();
        let mut discovered_total = 1u64;
        let mut unexplored_degree = g.num_directed_edges() as u64 - g.degree(source) as u64;
        let mut frontier_degree = g.degree(source) as u64;
        let mut frontier_vertices = 1u64;
        let mut direction = Direction::TopDown;
        let mut dense_live = dense_top_down;
        let mut depth = 0u32;

        while frontier_vertices > 0 {
            if let Some(max) = opts.max_iterations {
                if depth >= max {
                    break;
                }
            }
            let next_dir = policy.decide(&FrontierState {
                frontier_vertices,
                frontier_degree,
                unexplored_degree,
                total_vertices: n as u64,
                current: direction,
            });
            // Representation conversions at direction switches.
            if next_dir == Direction::BottomUp && !dense_live {
                frontier_dense.clear_all();
                for &v in &frontier_sparse {
                    frontier_dense.set(v as usize);
                }
                dense_live = true;
            } else if next_dir == Direction::TopDown && dense_live && !dense_top_down {
                frontier_sparse.clear();
                frontier_sparse.extend(frontier_dense.iter_set_in(0, n).map(|v| v as VertexId));
                dense_live = false;
            }
            direction = next_dir;
            depth += 1;

            let iter_start = std::time::Instant::now();
            let mut visited_neighbors = 0u64;
            let mut new_frontier_degree = 0u64;
            let discovered;

            match direction {
                Direction::TopDown if !dense_live => {
                    next_sparse.clear();
                    for &v in frontier_sparse.iter() {
                        for &nbr in g.neighbors(v) {
                            visited_neighbors += 1;
                            if dist[nbr as usize] == UNREACHED {
                                dist[nbr as usize] = depth;
                                visitor.on_found(nbr, depth);
                                visitor.on_tree_edge(v, nbr);
                                new_frontier_degree += g.degree(nbr) as u64;
                                next_sparse.push(nbr);
                            }
                        }
                    }
                    discovered = next_sparse.len() as u64;
                    std::mem::swap(&mut frontier_sparse, &mut next_sparse);
                    frontier_vertices = frontier_sparse.len() as u64;
                }
                Direction::TopDown => {
                    // Dense top-down: scan frontier bits (chunk-skipped).
                    next_dense.clear_all();
                    let mut count = 0u64;
                    for v in frontier_dense.iter_set_in(0, n) {
                        for &nbr in g.neighbors(v as VertexId) {
                            visited_neighbors += 1;
                            if dist[nbr as usize] == UNREACHED {
                                dist[nbr as usize] = depth;
                                visitor.on_found(nbr, depth);
                                visitor.on_tree_edge(v as VertexId, nbr);
                                new_frontier_degree += g.degree(nbr) as u64;
                                next_dense.set(nbr as usize);
                                count += 1;
                            }
                        }
                    }
                    discovered = count;
                    std::mem::swap(&mut frontier_dense, &mut next_dense);
                    frontier_vertices = count;
                }
                Direction::BottomUp => {
                    next_dense.clear_all();
                    let mut count = 0u64;
                    // Scans u's neighbors for a frontier member; returns
                    // (edges scanned, whether u was discovered).
                    let scan = |u: usize, frontier_dense: &BitVec| -> (u64, bool) {
                        let mut scanned = 0u64;
                        for &v in g.neighbors(u as VertexId) {
                            scanned += 1;
                            if frontier_dense.get(v as usize) {
                                return (scanned, true);
                            }
                        }
                        (scanned, false)
                    };
                    let mut step = |u: usize,
                                    dist: &mut Vec<u32>,
                                    visited_neighbors: &mut u64,
                                    count: &mut u64| {
                        if dist[u] != UNREACHED {
                            return;
                        }
                        let (scanned, found) = scan(u, &frontier_dense);
                        *visited_neighbors += scanned;
                        if found {
                            dist[u] = depth;
                            next_dense.set(u);
                            *count += 1;
                        }
                    };
                    if chunk_skip {
                        // Skip 8-vertex strides where everything is seen —
                        // the analogue of the paper's 8-byte range check,
                        // driven by the distance array.
                        let mut u = 0usize;
                        while u < n {
                            let end = (u + 8).min(n);
                            if dist[u..end].iter().all(|&d| d != UNREACHED) {
                                u = end;
                                continue;
                            }
                            for x in u..end {
                                step(x, &mut dist, &mut visited_neighbors, &mut count);
                            }
                            u = end;
                        }
                    } else {
                        for u in 0..n {
                            step(u, &mut dist, &mut visited_neighbors, &mut count);
                        }
                    }
                    // Fire visitor events after the scan (the scan closure
                    // borrows dist mutably).
                    for u in next_dense.iter_set_in(0, n) {
                        visitor.on_found(u as VertexId, depth);
                        // Identify one in-frontier neighbor as parent.
                        if let Some(&p) = g
                            .neighbors(u as VertexId)
                            .iter()
                            .find(|&&v| frontier_dense.get(v as usize))
                        {
                            visitor.on_tree_edge(p, u as VertexId);
                        }
                    }
                    for u in next_dense.iter_set_in(0, n) {
                        new_frontier_degree += g.degree(u as VertexId) as u64;
                    }
                    discovered = count;
                    std::mem::swap(&mut frontier_dense, &mut next_dense);
                    frontier_vertices = count;
                    dense_live = true;
                }
            }

            discovered_total += discovered;
            unexplored_degree = unexplored_degree.saturating_sub(new_frontier_degree);
            frontier_degree = new_frontier_degree;
            let iter_wall = iter_start.elapsed();
            rec.span_at_ctx(
                0,
                pbfs_telemetry::EventKind::Iteration,
                iter_start,
                iter_wall,
                depth as u64,
                discovered,
                qset,
            );
            stats.iterations.push(IterationStats {
                iteration: depth,
                direction,
                wall_ns: iter_wall.as_nanos() as u64,
                expand_ns: 0,
                settle_ns: 0,
                frontier_vertices,
                discovered,
                chunks_scanned: 0,
                chunks_skipped: 0,
                per_worker: vec![crate::stats::WorkerIterStats {
                    busy_ns: iter_start.elapsed().as_nanos() as u64,
                    visited_neighbors,
                    updated_states: discovered,
                    tasks: 1,
                    ..Default::default()
                }],
            });
            if discovered == 0 {
                break;
            }
        }

        stats.total_wall_ns = start.elapsed().as_nanos() as u64;
        stats.total_discovered = discovered_total;
        (dist, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textbook;
    use pbfs_graph::gen;

    fn all_kinds() -> [DirectionOptBfs; 3] {
        [
            DirectionOptBfs::new(QueueKind::Gapbs),
            DirectionOptBfs::new(QueueKind::Sparse),
            DirectionOptBfs::new(QueueKind::Dense),
        ]
    }

    #[test]
    fn matches_oracle_on_fixed_topologies() {
        let graphs = [
            gen::path(17),
            gen::cycle(9),
            gen::star(33),
            gen::complete(12),
            gen::binary_tree(4),
            gen::grid(7, 5),
        ];
        for g in &graphs {
            let oracle = textbook::distances(g, 0);
            for bfs in all_kinds() {
                assert_eq!(bfs.run(g, 0), oracle, "{:?}", bfs.kind);
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::uniform(500, 2000, seed);
            for source in [0u32, 13, 499] {
                let oracle = textbook::distances(&g, source);
                for bfs in all_kinds() {
                    assert_eq!(bfs.run(&g, source), oracle, "{:?} seed={seed}", bfs.kind);
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_kronecker() {
        let g = gen::Kronecker::graph500(10).seed(2).generate();
        let oracle = textbook::distances(&g, 5);
        for bfs in all_kinds() {
            assert_eq!(bfs.run(&g, 5), oracle, "{:?}", bfs.kind);
        }
    }

    #[test]
    fn forced_directions_match_oracle() {
        let g = gen::Kronecker::graph500(9).seed(7).generate();
        let oracle = textbook::distances(&g, 1);
        for policy in [
            DirectionPolicy::AlwaysTopDown,
            DirectionPolicy::AlwaysBottomUp,
        ] {
            for kind in [QueueKind::Sparse, QueueKind::Dense] {
                let bfs = DirectionOptBfs {
                    kind,
                    policy,
                    chunk_skip: true,
                };
                assert_eq!(bfs.run(&g, 1), oracle, "{kind:?} {policy:?}");
            }
        }
    }

    #[test]
    fn chunk_skip_off_matches() {
        let g = gen::uniform(300, 900, 3);
        let a = DirectionOptBfs {
            chunk_skip: false,
            ..DirectionOptBfs::new(QueueKind::Sparse)
        };
        let b = DirectionOptBfs::new(QueueKind::Sparse);
        assert_eq!(a.run(&g, 0), b.run(&g, 0));
    }

    #[test]
    fn small_world_run_switches_to_bottom_up() {
        let g = gen::Kronecker::graph500(11).seed(4).generate();
        let bfs = DirectionOptBfs::new(QueueKind::Sparse);
        let src = (0..g.num_vertices() as u32)
            .find(|&v| g.degree(v) > 0)
            .unwrap();
        let (_, stats) = bfs.run_with(&g, src, &crate::visitor::NoopVisitor);
        assert!(
            stats.bottom_up_iterations() > 0,
            "dense graph should trigger bottom-up"
        );
        assert!(stats.num_iterations() < 12);
    }

    #[test]
    fn visitor_receives_tree() {
        let g = gen::uniform_connected(100, 150, 9);
        let bfs = DirectionOptBfs::new(QueueKind::Dense);
        let dists = crate::visitor::DistanceVisitor::new(100);
        let parents = crate::visitor::ParentVisitor::new(100, 0);
        let pair = crate::visitor::PairVisitor(&dists, &parents);
        let (d, _) = bfs.run_with(&g, 0, &pair);
        assert_eq!(dists.distances(), d);
        crate::validate::validate_tree(&g, 0, &parents.parents(), &d).unwrap();
    }

    #[test]
    fn disconnected_component_unreached() {
        let g = gen::disjoint_union(&[&gen::path(4), &gen::star(5)]);
        for bfs in all_kinds() {
            let d = bfs.run(&g, 0);
            assert_eq!(d[0], 0);
            assert!(d[4..].iter().all(|&x| x == UNREACHED), "{:?}", bfs.kind);
        }
    }
}
