//! Offline shim of the `rand` 0.9 API surface this workspace uses.
//!
//! The build container has no registry access, so this in-tree crate
//! provides `StdRng`, [`Rng`], [`SeedableRng`] and `seq::SliceRandom` with
//! upstream-compatible signatures. The generator is `xoshiro256**` seeded
//! through SplitMix64 — high-quality and deterministic, but the streams are
//! **not** bit-identical to upstream `rand`; every consumer in this
//! workspace only relies on seed-stability within the workspace itself.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_raw()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        (rng.next_raw() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_raw() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable via `rng.random_range(..)`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased-enough reduction: 128-bit multiply
                // keeps modulo bias below 2^-64, irrelevant at our spans.
                let hi = ((rng.next_raw() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in random_range");
                if start == 0 && end == <$t>::MAX {
                    return Standard::sample(rng) ;
                }
                #[allow(unused_comparisons)]
                { (start..end + 1).sample_from(rng) }
            }
        }
    )*};
}

impl_sample_range_int!(u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                // Wrapping arithmetic makes the full signed domain valid.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_raw() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range in random_range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_raw() as $t;
                }
                (start..end.wrapping_add(1)).sample_from(rng)
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64);

impl Standard for usize {
    #[inline]
    fn sample(rng: &mut StdRng) -> Self {
        rng.next_raw() as usize
    }
}

/// The user-facing generator trait (subset: `random`, `random_range`).
pub trait Rng {
    /// Uniform sample over the whole domain of `T`.
    fn random<T: Standard>(&mut self) -> T;
    /// Uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, SampleRange};

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    // `RangeInclusive<usize>` sampling is provided by the parent module.
    const _: fn() = || {
        fn assert_range<R: SampleRange<usize>>() {}
        assert_range::<std::ops::RangeInclusive<usize>>();
    };
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(3..10usize) - 3] = true;
        }
        assert!(seen[..7].iter().all(|&s| s), "all of 3..10 hit: {seen:?}");
        assert!(!seen[7..].iter().any(|&s| s));
        for _ in 0..100 {
            let v: u32 = rng.random_range(0..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never stay in place");
    }
}
