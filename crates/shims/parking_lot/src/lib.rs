//! Offline shim of the `parking_lot` API surface this workspace uses:
//! non-poisoning `Mutex` and `Condvar` built on the standard library.
//! Poisoned std locks are transparently recovered, matching parking_lot's
//! no-poisoning semantics.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable compatible with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing the guarded lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses; returns `true` iff the
    /// wait timed out (parking_lot's `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let g = guard.inner.take().expect("guard already taken");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
