//! Offline shim of the `crossbeam` API surface this workspace uses:
//! `utils::CachePadded` and `thread::scope`, implemented on top of the
//! standard library (`std::thread::scope` has subsumed the scoped-thread
//! part of crossbeam since Rust 1.63).

#![warn(missing_docs)]

/// Utility types.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so neighbouring values never
    /// share a cache line (matches upstream's x86_64 alignment, which packs
    /// for adjacent-line prefetch pairs).
    #[derive(Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        #[inline]
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        #[inline]
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

/// Scoped threads with the crossbeam calling convention.
pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`] closures and spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; unlike `std`, the closure receives the
        /// scope again so it can spawn siblings (crossbeam convention).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned. Returns `Ok` unless a *detached* (never-joined) child
    /// panicked; explicitly joined panics surface through `join` like
    /// upstream.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread as cb_thread;
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cache_padded_is_big_and_transparent() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        let p = CachePadded::new(41u64);
        assert_eq!(*p + 1, 42);
        assert_eq!(p.into_inner(), 41);
    }

    #[test]
    fn scope_spawns_and_joins() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let sum = cb_thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum::<usize>()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(sum, 60);
    }

    #[test]
    fn joined_panic_is_an_err() {
        let r = cb_thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let hits = AtomicUsize::new(0);
        cb_thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
                .join()
                .unwrap();
            })
            .join()
            .unwrap();
        })
        .unwrap();
        assert_eq!(hits.into_inner(), 1);
    }
}
