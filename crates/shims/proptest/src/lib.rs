//! Offline shim of the `proptest` API surface this workspace uses.
//!
//! Implements the [`proptest!`] macro, [`Strategy`] combinators
//! (`prop_map`, `prop_flat_map`), range/tuple strategies,
//! `collection::vec`, `array::uniform2` and `any`, all driven by the
//! in-tree deterministic `rand` shim.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case index
//!   and the test re-runs identically (seeds derive from the test's module
//!   path + case number), so failures reproduce without persistence files.
//! * **`PROPTEST_CASES`** caps the case count of every test:
//!   `effective = min(config.cases, $PROPTEST_CASES)` — used by CI to stay
//!   inside its time budget.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Error type carried by `prop_assert*` early returns.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn new(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration (the `cases` subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Creates a config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }

    /// The configured case count, capped by the `PROPTEST_CASES`
    /// environment variable when set.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

/// Deterministic RNG for case `case` of the test identified by `name`.
pub fn test_rng(name: &str, case: u64) -> StdRng {
    // FNV-1a over the fully qualified test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_uniform!(u32, u64, usize, bool);

/// Whole-domain strategy marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng as _;

    /// Inclusive length bounds of a generated collection.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy for `Vec<T>` with per-element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy for `[T; 2]`.
    pub struct Uniform2<S>(S);

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            [self.0.generate(rng), self.0.generate(rng)]
        }
    }

    /// Two independent draws from `element`.
    pub fn uniform2<S: Strategy>(element: S) -> Uniform2<S> {
        Uniform2(element)
    }
}

/// Early-returns a [`TestCaseError`] when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// Early-returns a [`TestCaseError`] when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.effective_cases() as u64 {
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.effective_cases(),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// One-stop imports, mirroring upstream.
pub mod prelude {
    /// Upstream re-exports the crate root as `prop`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_case() {
        let s = (0u32..100, 0u32..100).prop_map(|(a, b)| a + b);
        let mut r1 = super::test_rng("x", 0);
        let mut r2 = super::test_rng("x", 0);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = super::collection::vec(0usize..5, 2..=4);
        let mut rng = super::test_rng("bounds", 1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_env_caps() {
        // Don't mutate the environment (tests run concurrently); just check
        // the uncapped path and the explicit constructor.
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn flat_map_dependent_range(n in 1usize..50, v in super::collection::vec(0usize..50, 1..=10)) {
            prop_assert!(n < 50);
            prop_assert!(v.iter().all(|&x| x < 50), "v = {:?}", v);
        }
    }
}
