//! Offline shim of the `bytes` API surface this workspace uses: the
//! little-endian integer accessors of `Buf` (for `&[u8]`) and `BufMut`
//! (for `Vec<u8>`).

#![warn(missing_docs)]

/// Sequential reader over a byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_integers() {
        let mut buf = Vec::new();
        buf.put_slice(b"hdr");
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        let mut r: &[u8] = &buf;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}
