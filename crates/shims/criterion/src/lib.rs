//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! Provides the macro/builder skeleton (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`) with a
//! simple measurement loop: each benchmark runs `sample_size` samples after
//! one warm-up and reports min/mean/max wall time (plus throughput when
//! declared) to stdout. No statistics engine, no HTML reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Conversion of bench identifiers (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        if samples.is_empty() {
            println!("{full:<40} (no samples)");
            return;
        }
        let ns: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
        let mean = ns.iter().sum::<u128>() / ns.len() as u128;
        let min = *ns.iter().min().unwrap();
        let max = *ns.iter().max().unwrap();
        let fmt_ns = |v: u128| -> String {
            if v >= 1_000_000_000 {
                format!("{:.3} s", v as f64 / 1e9)
            } else if v >= 1_000_000 {
                format!("{:.3} ms", v as f64 / 1e6)
            } else {
                format!("{:.3} µs", v as f64 / 1e3)
            }
        };
        let mut line = format!(
            "{full:<40} [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if mean > 0 {
                let rate = count as f64 / (mean as f64 / 1e9);
                line.push_str(&format!("  {rate:.3e} {unit}"));
            }
        }
        println!("{line}");
    }
}

/// Measures closures inside one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` samples after one warm-up call.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundles benchmark functions into a single named runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_collect_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // one warm-up + 3 samples
        assert_eq!(calls, 4);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo_group();
    }
}
