//! Cross-thread consistency of the telemetry substrate: counters,
//! histograms and trace rings hammered from N threads must lose, tear or
//! double-count nothing.

use std::sync::Arc;

use pbfs_telemetry::{Counter, EventKind, Histogram, TraceRecorder};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn counter_totals_are_exact(threads in 2usize..=6, per_thread in vec(0u64..1_000, 1..=64)) {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for t in 0..threads {
                let c = &c;
                let vals = &per_thread;
                s.spawn(move || {
                    for &v in vals {
                        c.add_at(t, v);
                    }
                });
            }
        });
        let expect = per_thread.iter().sum::<u64>() * threads as u64;
        prop_assert_eq!(c.get(), expect);
    }

    #[test]
    fn histogram_counts_and_sums_are_exact(
        threads in 2usize..=6,
        per_thread in vec(0u64..5_000, 1..=64),
    ) {
        let h = Arc::new(Histogram::new(&[10, 100, 1_000]));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let h = &h;
                let vals = &per_thread;
                s.spawn(move || {
                    for &v in vals {
                        h.observe(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        let n = (threads * per_thread.len()) as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(snap.sum, per_thread.iter().sum::<u64>() * threads as u64);
        // Cumulative bucket counts are monotone and end at the total.
        prop_assert!(snap.cumulative.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*snap.cumulative.last().unwrap(), n);
        // Every observation landed in exactly one bucket: the cumulative
        // count at each bound equals the number of values <= that bound.
        for (i, &bound) in snap.bounds.iter().enumerate() {
            let expect = per_thread.iter().filter(|&&v| v <= bound).count() as u64
                * threads as u64;
            prop_assert_eq!(snap.cumulative[i], expect);
        }
    }

    #[test]
    fn rings_keep_a_per_lane_suffix(
        threads in 2usize..=6,
        pushes in 1usize..=200,
        capacity in 1usize..=64,
    ) {
        let dropped = Arc::new(Counter::new());
        let rec = Arc::new(TraceRecorder::new(capacity, Some(Arc::clone(&dropped))));
        rec.set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..threads {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..pushes {
                        // Unique, per-lane-monotone payload.
                        rec.mark(t, EventKind::Steal, (t * 1_000_000 + i) as u64, 0);
                    }
                });
            }
        });
        let dump = rec.drain();
        prop_assert_eq!(dump.lanes.len(), threads);
        let mut total_dropped = 0;
        for lane in &dump.lanes {
            // Nothing lost: kept + dropped = pushed.
            prop_assert_eq!(lane.events.len() as u64 + lane.dropped, pushes as u64);
            total_dropped += lane.dropped;
            // Nothing torn or reordered: the survivors are exactly the
            // newest contiguous suffix of what this lane pushed.
            let base = (lane.lane * 1_000_000 + pushes - lane.events.len()) as u64;
            for (i, e) in lane.events.iter().enumerate() {
                prop_assert_eq!(e.a, base + i as u64);
            }
        }
        prop_assert_eq!(dump.total_dropped(), total_dropped);
        prop_assert_eq!(dropped.get(), total_dropped);
    }
}
