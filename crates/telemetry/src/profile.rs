//! Phase-attributed traversal profiles.
//!
//! A [`TraversalProfile`] is the plain-data result of attributing one
//! traversal's wall time to its phases: for every iteration, how many
//! nanoseconds went to frontier expansion vs. settling vs. the bottom-up
//! pull, how many edges were relaxed, how many frontier entries the
//! summary scans examined or skipped, and an estimated byte volume touched
//! (derived from the caller's memory model). The producer lives next to
//! the kernels (`pbfs-core` builds profiles from `TraversalStats`); this
//! module owns only the representation and its renderings — a
//! human-readable table, JSON, and flamegraph-compatible folded stacks —
//! so any layer that holds per-phase numbers can export them identically.
//!
//! Rows are constructed so their `ns` column partitions the traversal
//! wall time exactly: unattributed time inside an iteration becomes an
//! `other` row and time outside all iterations (setup, final clears)
//! becomes an `overhead` row. `total_ns()` therefore reconciles with the
//! producer's wall clock by construction.

use std::fmt::Write as _;

use pbfs_json::{Json, ToJson};

/// One row of a phase-attributed profile: what one phase of one iteration
/// did and what it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRow {
    /// 1-based iteration (BFS depth) the row belongs to; 0 for
    /// whole-traversal rows such as `overhead`.
    pub iteration: u32,
    /// Phase name: `expand`, `settle`, `bottom_up`, `other`, `overhead`.
    pub phase: &'static str,
    /// Wall nanoseconds attributed to this phase.
    pub ns: u64,
    /// Edges relaxed (neighbor visits) during the phase.
    pub edges: u64,
    /// Frontier entries / summary chunks examined by the phase's scans.
    pub scanned: u64,
    /// Frontier entries / summary chunks skipped via the summary.
    pub skipped: u64,
    /// Estimated bytes touched (graph + state traffic under the model).
    pub bytes_est: u64,
}

/// A whole traversal's profile: identity plus the partitioned phase rows.
#[derive(Clone, Debug, Default)]
pub struct TraversalProfile {
    /// Kernel name (`mspbfs`, `smspbfs-bit`, ...).
    pub algo: String,
    /// Concurrent sources served by the traversal (1 for single-source).
    pub width: usize,
    /// Total traversal wall time; equals the sum of all row `ns`.
    pub total_ns: u64,
    /// Vertices discovered.
    pub discovered: u64,
    /// Phase rows in iteration order.
    pub rows: Vec<PhaseRow>,
}

impl TraversalProfile {
    /// Sum of the `ns` column — by construction equal to [`Self::total_ns`].
    pub fn rows_total_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.ns).sum()
    }

    /// Aggregates the rows by phase name, preserving first-seen order.
    pub fn by_phase(&self) -> Vec<PhaseRow> {
        let mut out: Vec<PhaseRow> = Vec::new();
        for r in &self.rows {
            match out.iter_mut().find(|o| o.phase == r.phase) {
                Some(o) => {
                    o.ns += r.ns;
                    o.edges += r.edges;
                    o.scanned += r.scanned;
                    o.skipped += r.skipped;
                    o.bytes_est += r.bytes_est;
                }
                None => out.push(PhaseRow {
                    iteration: 0,
                    ..r.clone()
                }),
            }
        }
        out
    }

    /// Renders the per-iteration table: one line per row plus a per-phase
    /// summary and the reconciliation total.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "profile: {} width={}", self.algo, self.width);
        let _ = writeln!(
            out,
            "{:>4}  {:<9} {:>12} {:>6} {:>12} {:>10} {:>10} {:>12}",
            "iter", "phase", "ns", "%", "edges", "scanned", "skipped", "bytes_est"
        );
        let total = self.total_ns.max(1);
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>4}  {:<9} {:>12} {:>5.1}% {:>12} {:>10} {:>10} {:>12}",
                r.iteration,
                r.phase,
                r.ns,
                100.0 * r.ns as f64 / total as f64,
                r.edges,
                r.scanned,
                r.skipped,
                r.bytes_est
            );
        }
        let _ = writeln!(out, "-- by phase --");
        for r in self.by_phase() {
            let _ = writeln!(
                out,
                "      {:<9} {:>12} {:>5.1}% {:>12} {:>10} {:>10} {:>12}",
                r.phase,
                r.ns,
                100.0 * r.ns as f64 / total as f64,
                r.edges,
                r.scanned,
                r.skipped,
                r.bytes_est
            );
        }
        let _ = writeln!(
            out,
            "total {} ns ({} rows, {} discovered)",
            self.total_ns,
            self.rows.len(),
            self.discovered
        );
        out
    }

    /// Renders flamegraph-compatible folded stacks, one line per row:
    /// `engine;batch;<algo>;iter_<k>;<phase> <ns>`. Feed the output to
    /// `flamegraph.pl` / `inferno-flamegraph` to visualize where traversal
    /// time goes.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            if r.ns == 0 {
                continue;
            }
            if r.iteration == 0 {
                let _ = writeln!(out, "engine;batch;{};{} {}", self.algo, r.phase, r.ns);
            } else {
                let _ = writeln!(
                    out,
                    "engine;batch;{};iter_{};{} {}",
                    self.algo, r.iteration, r.phase, r.ns
                );
            }
        }
        out
    }
}

impl ToJson for PhaseRow {
    fn to_json(&self) -> Json {
        pbfs_json::json!({
            "iteration": (self.iteration as u64),
            "phase": (self.phase),
            "ns": (self.ns),
            "edges": (self.edges),
            "scanned": (self.scanned),
            "skipped": (self.skipped),
            "bytes_est": (self.bytes_est)
        })
    }
}

impl ToJson for TraversalProfile {
    fn to_json(&self) -> Json {
        pbfs_json::json!({
            "algo": (self.algo.clone()),
            "width": (self.width as u64),
            "total_ns": (self.total_ns),
            "discovered": (self.discovered),
            "rows": (Json::Arr(self.rows.iter().map(ToJson::to_json).collect()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraversalProfile {
        TraversalProfile {
            algo: "mspbfs".into(),
            width: 64,
            total_ns: 1000,
            discovered: 12,
            rows: vec![
                PhaseRow {
                    iteration: 1,
                    phase: "expand",
                    ns: 400,
                    edges: 90,
                    scanned: 8,
                    skipped: 2,
                    bytes_est: 720,
                },
                PhaseRow {
                    iteration: 1,
                    phase: "settle",
                    ns: 300,
                    edges: 0,
                    scanned: 4,
                    skipped: 6,
                    bytes_est: 96,
                },
                PhaseRow {
                    iteration: 1,
                    phase: "other",
                    ns: 100,
                    edges: 0,
                    scanned: 0,
                    skipped: 0,
                    bytes_est: 0,
                },
                PhaseRow {
                    iteration: 0,
                    phase: "overhead",
                    ns: 200,
                    edges: 0,
                    scanned: 0,
                    skipped: 0,
                    bytes_est: 0,
                },
            ],
        }
    }

    #[test]
    fn rows_partition_total() {
        let p = sample();
        assert_eq!(p.rows_total_ns(), p.total_ns);
    }

    #[test]
    fn by_phase_merges_and_keeps_order() {
        let p = sample();
        let phases: Vec<&str> = p.by_phase().iter().map(|r| r.phase).collect();
        assert_eq!(phases, vec!["expand", "settle", "other", "overhead"]);
        assert_eq!(p.by_phase()[0].edges, 90);
    }

    #[test]
    fn folded_stacks_have_the_documented_shape() {
        let folded = sample().folded();
        assert!(folded.contains("engine;batch;mspbfs;iter_1;expand 400"));
        assert!(folded.contains("engine;batch;mspbfs;overhead 200"));
        // Every line is `stack ns` with a numeric weight.
        for line in folded.lines() {
            let (stack, ns) = line.rsplit_once(' ').unwrap();
            assert!(stack.starts_with("engine;batch;"));
            assert!(ns.parse::<u64>().is_ok(), "bad line: {line}");
        }
    }

    #[test]
    fn table_and_json_render() {
        let p = sample();
        let table = p.table();
        assert!(table.contains("expand"));
        assert!(table.contains("-- by phase --"));
        assert!(table.contains("total 1000 ns"));
        let parsed = pbfs_json::parse(&p.to_json().to_string()).unwrap();
        assert_eq!(parsed["total_ns"].as_u64(), Some(1000));
        assert_eq!(parsed["rows"].as_array().unwrap().len(), 4);
        assert_eq!(parsed["rows"][0]["phase"].as_str(), Some("expand"));
    }
}
