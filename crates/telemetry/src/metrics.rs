//! Lock-free metrics: counters, gauges, and fixed-bucket histograms in a
//! scrape-on-demand registry.
//!
//! All hot-path updates are relaxed `fetch_add`s on cache-line-padded
//! shards (one shard per writing thread, assigned round-robin), so the
//! metrics layer is always on: recording a sample never takes a lock and
//! never contends with another worker. Aggregation across shards happens
//! only when a [`Registry::snapshot`] is taken.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

/// Number of write shards per metric (power of two). More shards than
/// concurrent writers just wastes a little memory; fewer means occasional
/// false sharing, never lost updates.
pub const SHARDS: usize = 16;

/// Round-robin shard index of the calling thread.
#[inline]
fn thread_shard() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
            s.set(v);
            v
        }
    })
}

/// A monotonically increasing counter.
pub struct Counter {
    shards: Vec<CachePadded<AtomicU64>>,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || CachePadded::new(AtomicU64::new(0)));
        Self { shards }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` on the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` on the shard derived from `lane` (e.g. a worker id), for
    /// call sites that already know their worker and want determinism.
    #[inline]
    pub fn add_at(&self, lane: usize, n: u64) {
        self.shards[lane & (SHARDS - 1)].fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A value that can go up and down (queue depths, in-flight counts).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistShard {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Best-effort per-bucket exemplar: the last sample routed to the bucket,
/// identified by the query that produced it and a trace reference (the
/// query-set id of the batch that served it), so a latency outlier in a
/// scrape points at a concrete replayable query.
struct ExemplarSlot {
    /// Query id of the last sample (0 = no exemplar recorded yet).
    query: AtomicU64,
    /// Trace reference (query-set id) of the last sample.
    trace_ref: AtomicU64,
}

/// A bucket exemplar as read in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// Query id that produced the exemplar sample.
    pub query: u64,
    /// Trace reference (query-set id) linking the sample to its trace.
    pub trace_ref: u64,
}

/// A histogram over fixed, inclusive upper-bound buckets (the Prometheus
/// `le` convention) plus an implicit `+Inf` bucket.
pub struct Histogram {
    bounds: Vec<u64>,
    shards: Vec<CachePadded<HistShard>>,
    /// One slot per bucket (incl. `+Inf`). Written with relaxed stores:
    /// concurrent writers race and the reader may pair a query with a
    /// neighboring writer's trace ref — acceptable for a debugging hint,
    /// and free on the observe path that doesn't use exemplars.
    exemplars: Vec<ExemplarSlot>,
}

impl Histogram {
    /// A histogram with the given strictly increasing inclusive upper
    /// bounds.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || {
            let mut buckets = Vec::with_capacity(bounds.len() + 1);
            buckets.resize_with(bounds.len() + 1, || AtomicU64::new(0));
            CachePadded::new(HistShard {
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })
        });
        let mut exemplars = Vec::with_capacity(bounds.len() + 1);
        exemplars.resize_with(bounds.len() + 1, || ExemplarSlot {
            query: AtomicU64::new(0),
            trace_ref: AtomicU64::new(0),
        });
        Self {
            bounds: bounds.to_vec(),
            shards,
            exemplars,
        }
    }

    /// The configured inclusive upper bounds (excluding `+Inf`).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        let shard = &self.shards[thread_shard()];
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample and stamps its bucket's exemplar with the query
    /// id and trace reference that produced it (last writer wins). Query
    /// id 0 is reserved for "no exemplar" and leaves the slot untouched.
    #[inline]
    pub fn observe_exemplar(&self, v: u64, query: u64, trace_ref: u64) {
        self.observe(v);
        if query != 0 {
            let idx = self.bounds.partition_point(|&b| b < v);
            let slot = &self.exemplars[idx];
            slot.query.store(query, Ordering::Relaxed);
            slot.trace_ref.store(trace_ref, Ordering::Relaxed);
        }
    }

    /// Aggregated state across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut per_bucket = vec![0u64; self.bounds.len() + 1];
        let (mut sum, mut count) = (0u64, 0u64);
        for shard in &self.shards {
            for (total, b) in per_bucket.iter_mut().zip(&shard.buckets) {
                *total += b.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
            count += shard.count.load(Ordering::Relaxed);
        }
        // Cumulative counts, Prometheus-style: bucket `le=b` counts every
        // sample ≤ b; the final entry is the `+Inf` bucket (== count).
        let mut running = 0u64;
        let cumulative = per_bucket
            .iter()
            .map(|c| {
                running += c;
                running
            })
            .collect();
        let exemplars = self
            .exemplars
            .iter()
            .map(|slot| {
                let query = slot.query.load(Ordering::Relaxed);
                (query != 0).then(|| Exemplar {
                    query,
                    trace_ref: slot.trace_ref.load(Ordering::Relaxed),
                })
            })
            .collect();
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            cumulative,
            sum,
            count,
            exemplars,
        }
    }
}

/// Point-in-time aggregate of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (excluding `+Inf`).
    pub bounds: Vec<u64>,
    /// Cumulative sample counts per bound; one extra trailing entry for
    /// `+Inf` (always equal to [`Self::count`]).
    pub cumulative: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
    /// Per-bucket exemplars (one entry per bound plus `+Inf`); `None`
    /// where no exemplar-carrying sample ever landed.
    pub exemplars: Vec<Option<Exemplar>>,
}

/// A registered metric handle.
#[derive(Clone)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Arc<Counter>),
    /// A [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`Histogram`].
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: String,
    help: String,
    metric: Metric,
}

/// A named collection of metrics, scraped on demand.
///
/// Registration is idempotent: registering the same `(name, labels)` pair
/// again returns the existing handle, so library layers can register their
/// metrics lazily without coordinating. Registration takes a lock; metric
/// *updates* never do.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, "", help)
    }

    /// Registers (or retrieves) a counter with a fixed label set, e.g.
    /// `direction="top_down"`.
    pub fn counter_with(&self, name: &str, labels: &str, help: &str) -> Arc<Counter> {
        match self.register(name, labels, help, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            other => panic!(
                "{name}{{{labels}}} already registered as a {}",
                other.kind()
            ),
        }
    }

    /// Registers an *existing* counter under an additional family name, so
    /// one underlying counter can be scraped under two names (e.g. a
    /// canonical family plus its legacy alias). Idempotent like the other
    /// registrations; returns the counter that is now behind `name`.
    pub fn counter_alias(&self, name: &str, help: &str, counter: &Arc<Counter>) -> Arc<Counter> {
        match self.register(name, "", help, || Metric::Counter(Arc::clone(counter))) {
            Metric::Counter(c) => c,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, "", help)
    }

    /// Registers (or retrieves) a gauge with a fixed label set.
    pub fn gauge_with(&self, name: &str, labels: &str, help: &str) -> Arc<Gauge> {
        match self.register(name, labels, help, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!(
                "{name}{{{labels}}} already registered as a {}",
                other.kind()
            ),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram with the given
    /// inclusive upper bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Arc<Histogram> {
        match self.register(name, "", help, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn register(
        &self,
        name: &str,
        labels: &str,
        help: &str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let mut entries = self.entries.lock();
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels.to_string(),
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Reads every registered metric. Samples are sorted by name (then
    /// labels) so renderings are deterministic and label variants of one
    /// family are adjacent.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock();
        let mut metrics: Vec<MetricSample> = entries
            .iter()
            .map(|e| MetricSample {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.metric {
                    Metric::Counter(c) => SampleValue::Counter(c.get()),
                    Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                    Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        metrics.sort_by(|a, b| a.name.cmp(&b.name).then_with(|| a.labels.cmp(&b.labels)));
        Snapshot { metrics }
    }
}

/// One scraped metric.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// Metric family name (e.g. `pbfs_sched_steals_total`).
    pub name: String,
    /// Fixed label set (`key="value",...`), empty for unlabeled metrics.
    pub labels: String,
    /// Human-readable description (the Prometheus `HELP` line).
    pub help: String,
    /// The sampled value.
    pub value: SampleValue,
}

impl MetricSample {
    /// The Prometheus `TYPE` of this sample.
    pub fn kind(&self) -> &'static str {
        match self.value {
            SampleValue::Counter(_) => "counter",
            SampleValue::Gauge(_) => "gauge",
            SampleValue::Histogram(_) => "histogram",
        }
    }
}

/// A sampled metric value.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Aggregated histogram.
    Histogram(HistogramSnapshot),
}

/// Point-in-time view of a whole [`Registry`].
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// All samples, sorted by `(name, labels)`.
    pub metrics: Vec<MetricSample>,
}

impl Snapshot {
    /// The sample with the given name and labels, if registered.
    pub fn find(&self, name: &str, labels: &str) -> Option<&MetricSample> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels == labels)
    }
}

/// `count` exponential bounds starting at `start` and growing by `factor`
/// (deduplicated after integer rounding).
pub fn exponential_buckets(start: u64, factor: f64, count: usize) -> Vec<u64> {
    assert!(start > 0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut edge = start as f64;
    for _ in 0..count {
        let b = edge.round() as u64;
        if bounds.last() != Some(&b) {
            bounds.push(b);
        }
        edge *= factor;
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_shards() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.add_at(3, 10);
        c.add_at(3 + SHARDS, 1); // wraps onto shard 3; still counted once
        assert_eq!(c.get(), 16);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(5);
        g.add(3);
        g.sub(10);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.bounds, vec![10, 100, 1000]);
        // le=10: {1,10}; le=100: +{11,100}; le=1000: +{}; +Inf: +{5000}.
        assert_eq!(s.cumulative, vec![2, 4, 4, 5]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn exemplars_track_last_query_per_bucket() {
        let h = Histogram::new(&[10, 100]);
        // Plain observes leave no exemplars.
        h.observe(5);
        assert!(h.snapshot().exemplars.iter().all(|e| e.is_none()));
        h.observe_exemplar(7, 41, 900);
        h.observe_exemplar(9, 42, 901); // same bucket: last writer wins
        h.observe_exemplar(5000, 43, 902); // +Inf bucket
        h.observe_exemplar(50, 0, 903); // query 0 = no exemplar
        let s = h.snapshot();
        assert_eq!(
            s.exemplars[0],
            Some(Exemplar {
                query: 42,
                trace_ref: 901
            })
        );
        assert_eq!(s.exemplars[1], None);
        assert_eq!(
            s.exemplars[2],
            Some(Exemplar {
                query: 43,
                trace_ref: 902
            })
        );
        // The exemplar-carrying observes still count as samples.
        assert_eq!(s.count, 5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn registry_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "a counter");
        let b = r.counter("x_total", "a counter");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
        // Same name, different labels → distinct metrics.
        let td = r.counter_with("iters_total", "direction=\"top_down\"", "per direction");
        let bu = r.counter_with("iters_total", "direction=\"bottom_up\"", "per direction");
        td.add(2);
        bu.add(1);
        let snap = r.snapshot();
        assert_eq!(snap.metrics.len(), 3);
        match &snap
            .find("iters_total", "direction=\"top_down\"")
            .unwrap()
            .value
        {
            SampleValue::Counter(v) => assert_eq!(*v, 2),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", "");
        r.gauge("m", "");
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.counter("zz", "");
        r.gauge("aa", "");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|m| m.name.as_str()).collect();
        // Snapshot sorts; registration order was zz, aa.
        assert_eq!(names, vec!["aa", "zz"]);
    }

    #[test]
    fn exponential_bounds_grow_and_dedup() {
        let b = exponential_buckets(1, 2.0, 5);
        assert_eq!(b, vec![1, 2, 4, 8, 16]);
        let b = exponential_buckets(1, 1.1, 4); // 1, 1.1, 1.21, 1.33 → rounds collide
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
