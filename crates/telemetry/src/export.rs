//! Exporters: Prometheus text exposition, Chrome trace-event JSON, and
//! plain JSON views of snapshots and trace dumps.

use std::fmt::Write as _;

use pbfs_json::{Json, ToJson};

use crate::metrics::{SampleValue, Snapshot};
use crate::trace::{TraceDump, TraceEvent};

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, histogram
/// `_bucket`/`_sum`/`_count` expansion, `le="+Inf"` included.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for m in &snap.metrics {
        if m.name != last_family {
            if !m.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
            }
            let _ = writeln!(out, "# TYPE {} {}", m.name, m.kind());
            last_family = &m.name;
        }
        match &m.value {
            SampleValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, brace(&m.labels), v);
            }
            SampleValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", m.name, brace(&m.labels), v);
            }
            SampleValue::Histogram(h) => {
                for (i, cum) in h.cumulative.iter().enumerate() {
                    let le = match h.bounds.get(i) {
                        Some(b) => b.to_string(),
                        None => "+Inf".to_string(),
                    };
                    let labels = join_labels(&m.labels, &format!("le=\"{le}\""));
                    // OpenMetrics-style exemplar suffix: a comment from the
                    // 0.0.4 text parser's point of view, so plain scrapers
                    // still parse the line, while humans (and our
                    // validator) can jump from a bucket to a query id and
                    // its trace's query-set id.
                    let ex = match h.exemplars.get(i).copied().flatten() {
                        Some(e) => {
                            format!(
                                " # {{query=\"{}\",trace_ref=\"{}\"}} 1",
                                e.query, e.trace_ref
                            )
                        }
                        None => String::new(),
                    };
                    let _ = writeln!(out, "{}_bucket{{{labels}}} {cum}{ex}", m.name);
                }
                let _ = writeln!(out, "{}_sum{} {}", m.name, brace(&m.labels), h.sum);
                let _ = writeln!(out, "{}_count{} {}", m.name, brace(&m.labels), h.count);
            }
        }
    }
    out
}

fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(a: &str, b: &str) -> String {
    if a.is_empty() {
        b.to_string()
    } else {
        format!("{a},{b}")
    }
}

impl ToJson for Snapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "metrics".to_string(),
            Json::Arr(
                self.metrics
                    .iter()
                    .map(|m| {
                        let mut fields = vec![
                            ("name".to_string(), Json::Str(m.name.clone())),
                            ("type".to_string(), Json::Str(m.kind().to_string())),
                        ];
                        if !m.labels.is_empty() {
                            fields.push(("labels".to_string(), Json::Str(m.labels.clone())));
                        }
                        match &m.value {
                            SampleValue::Counter(v) => {
                                fields.push(("value".to_string(), Json::Num(*v as f64)));
                            }
                            SampleValue::Gauge(v) => {
                                fields.push(("value".to_string(), Json::Num(*v as f64)));
                            }
                            SampleValue::Histogram(h) => {
                                let buckets = h
                                    .cumulative
                                    .iter()
                                    .enumerate()
                                    .map(|(i, cum)| {
                                        let mut bucket = vec![
                                            (
                                                "le".to_string(),
                                                match h.bounds.get(i) {
                                                    Some(b) => Json::Num(*b as f64),
                                                    None => Json::Str("+Inf".to_string()),
                                                },
                                            ),
                                            ("count".to_string(), Json::Num(*cum as f64)),
                                        ];
                                        if let Some(e) = h.exemplars.get(i).copied().flatten() {
                                            bucket.push((
                                                "exemplar".to_string(),
                                                pbfs_json::json!({
                                                    "query": (e.query),
                                                    "trace_ref": (e.trace_ref)
                                                }),
                                            ));
                                        }
                                        Json::Obj(bucket)
                                    })
                                    .collect();
                                fields.push(("buckets".to_string(), Json::Arr(buckets)));
                                fields.push(("sum".to_string(), Json::Num(h.sum as f64)));
                                fields.push(("count".to_string(), Json::Num(h.count as f64)));
                            }
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        )])
    }
}

/// Converts a trace dump to the Chrome trace-event JSON object format
/// (loadable in `chrome://tracing` and Perfetto): one `X` (complete)
/// event per span, one `i` (instant) event per mark, plus `thread_name`
/// metadata per lane. Timestamps are microseconds with nanosecond
/// fractions, and each lane's events are emitted in start-timestamp
/// order (the ring stores events in *completion* order, which inverts
/// nested or cross-thread spans on shared lanes).
pub fn chrome_trace(dump: &TraceDump) -> Json {
    let mut events = Vec::with_capacity(dump.total_events() + dump.lanes.len() + 1);
    events.push(pbfs_json::json!({
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": "pbfs"}
    }));
    for lane in &dump.lanes {
        events.push(pbfs_json::json!({
            "ph": "M", "pid": 1, "tid": (lane.lane), "name": "thread_name",
            "args": {"name": (TraceDump::lane_name(lane.lane))}
        }));
        let mut ordered: Vec<&TraceEvent> = lane.events.iter().collect();
        ordered.sort_by_key(|e| e.start_ns);
        for e in ordered {
            events.push(chrome_event(lane.lane, e));
        }
    }
    pbfs_json::json!({
        "traceEvents": (Json::Arr(events)),
        "displayTimeUnit": "ns"
    })
}

fn chrome_event(lane: usize, e: &TraceEvent) -> Json {
    let (an, bn) = e.kind.arg_names();
    let mut arg_fields = vec![
        (an.to_string(), Json::Num(e.a as f64)),
        (bn.to_string(), Json::Num(e.b as f64)),
    ];
    if e.qset != 0 {
        arg_fields.push(("qset".to_string(), Json::Num(e.qset as f64)));
    }
    let args = Json::Obj(arg_fields);
    let ts = e.start_ns as f64 / 1e3;
    if e.kind.is_span() {
        pbfs_json::json!({
            "name": (e.kind.name()), "cat": (e.kind.category()),
            "ph": "X", "ts": ts, "dur": (e.dur_ns as f64 / 1e3),
            "pid": 1, "tid": lane, "args": (args)
        })
    } else {
        pbfs_json::json!({
            "name": (e.kind.name()), "cat": (e.kind.category()),
            "ph": "i", "ts": ts, "s": "t",
            "pid": 1, "tid": lane, "args": (args)
        })
    }
}

impl ToJson for TraceDump {
    fn to_json(&self) -> Json {
        chrome_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::trace::{EventKind, TraceRecorder, CLIENT_LANE};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter_with("it_total", "direction=\"top_down\"", "iterations")
            .add(3);
        r.counter_with("it_total", "direction=\"bottom_up\"", "iterations")
            .add(1);
        r.gauge("depth", "queue depth").set(7);
        let h = r.histogram("lat_ns", "latency", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        r
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 7"));
        assert!(text.contains("# TYPE it_total counter"));
        // One HELP/TYPE header for the whole labeled family.
        assert_eq!(text.matches("# TYPE it_total").count(), 1);
        assert!(text.contains("it_total{direction=\"bottom_up\"} 1"));
        assert!(text.contains("it_total{direction=\"top_down\"} 3"));
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_ns_sum 5055"));
        assert!(text.contains("lat_ns_count 3"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad line: {line}");
            assert!(parts.next().is_some(), "bad line: {line}");
        }
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let parsed = pbfs_json::parse(&json.to_string()).unwrap();
        let metrics = parsed["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 4);
        let hist = metrics
            .iter()
            .find(|m| m["name"].as_str() == Some("lat_ns"))
            .unwrap();
        assert_eq!(hist["count"].as_u64(), Some(3));
        assert_eq!(hist["buckets"].as_array().unwrap().len(), 3);
    }

    #[test]
    fn chrome_trace_has_spans_marks_and_metadata() {
        let rec = TraceRecorder::new(64, None);
        rec.set_enabled(true);
        let t = rec.start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        rec.span(2, EventKind::Task, t, 64, 0);
        rec.mark_ctx(CLIENT_LANE, EventKind::BatchComplete, 64, 9, 12);
        let json = chrome_trace(&rec.drain());
        let parsed = pbfs_json::parse(&json.to_string()).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        // process_name + 2 thread_name + 1 span + 1 mark.
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .unwrap();
        assert_eq!(span["name"].as_str(), Some("task"));
        assert_eq!(span["tid"].as_u64(), Some(2));
        assert!(span["dur"].as_f64().unwrap() >= 1000.0);
        assert_eq!(span["args"]["items"].as_u64(), Some(64));
        // qset 0 (unattributed) is omitted from args.
        assert!(span["args"]["qset"].as_u64().is_none());
        let mark = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("i"))
            .unwrap();
        assert_eq!(mark["name"].as_str(), Some("batch_complete"));
        assert_eq!(mark["s"].as_str(), Some("t"));
        assert_eq!(mark["args"]["qset"].as_u64(), Some(12));
    }

    #[test]
    fn prometheus_renders_exemplars_on_bucket_lines() {
        let r = Registry::new();
        let h = r.histogram("lat_ns", "latency", &[10, 100]);
        h.observe_exemplar(5, 17, 3);
        let text = prometheus_text(&r.snapshot());
        assert!(
            text.contains("lat_ns_bucket{le=\"10\"} 1 # {query=\"17\",trace_ref=\"3\"} 1"),
            "missing exemplar: {text}"
        );
        // Buckets without an exemplar render the plain 0.0.4 form.
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 1\n"));
    }
}
