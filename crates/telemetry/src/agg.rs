//! Shared per-worker aggregation math.
//!
//! The skew and imbalance metrics of Figures 6–9 used to be duplicated
//! between `pbfs_core::stats` and `pbfs_sched::instrument`; they live here
//! once and are re-exported by both. The same helpers back the exporters,
//! so a Prometheus scrape and a `TraversalStats` report can never disagree
//! on what "skew" means.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::utils::CachePadded;

/// Ratio of the largest to the smallest value (Figure 9's busy-time skew).
/// Zero values are clamped to 1 so the ratio stays finite; an empty input
/// yields 0.0.
pub fn max_min_ratio(values: impl IntoIterator<Item = u64>) -> f64 {
    let mut max = None;
    let mut min = None;
    for v in values {
        max = Some(max.map_or(v, |m: u64| m.max(v)));
        let c = v.max(1);
        min = Some(min.map_or(c, |m: u64| m.min(c)));
    }
    match (max, min) {
        (Some(max), Some(min)) => max as f64 / min as f64,
        _ => 0.0,
    }
}

/// Ratio of the largest value to the mean (deterministic imbalance:
/// 1.0 = perfectly balanced, `T` = all work on one of `T` queues).
/// Bounded, unlike [`max_min_ratio`], which explodes whenever one queue
/// happens to own almost nothing in a sparse iteration. Empty or all-zero
/// inputs yield 0.0.
pub fn max_mean_ratio(values: impl IntoIterator<Item = u64>) -> f64 {
    let (mut max, mut sum, mut count) = (0u64, 0u64, 0usize);
    for v in values {
        max = max.max(v);
        sum += v;
        count += 1;
    }
    if count == 0 || max == 0 {
        return 0.0;
    }
    let mean = sum as f64 / count as f64;
    max as f64 / mean.max(1e-9)
}

/// Sums a projection of per-worker rows across many groups (iterations,
/// phases, batches) into one total per worker. Groups may have different
/// widths; the result is as wide as the widest group.
pub fn fold_per_worker<'a, T: 'a>(
    groups: impl IntoIterator<Item = &'a [T]>,
    f: impl Fn(&T) -> u64,
) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for group in groups {
        if out.len() < group.len() {
            out.resize(group.len(), 0);
        }
        for (slot, row) in out.iter_mut().zip(group) {
            *slot += f(row);
        }
    }
    out
}

/// The `p`-quantile (`0.0..=1.0`) of an ascending-sorted sample by
/// nearest-rank; 0 for an empty sample.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (p.clamp(0.0, 1.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A single-threaded bounded histogram for long-lived latency accumulation:
/// O(buckets) memory no matter how many samples are observed, exact
/// sum/count/max, and quantiles read off the bucket upper bounds.
///
/// Unlike [`crate::metrics::Histogram`] this is not shared or atomic — it
/// is meant for owned accumulator state (e.g. the query engine's stats)
/// where the unbounded `Vec<u64>`-of-samples approach would grow forever.
#[derive(Clone, Debug)]
pub struct BoundedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl BoundedHistogram {
    /// A histogram with the given ascending bucket upper bounds (an
    /// implicit `+inf` bucket is appended).
    pub fn new(bounds: Vec<u64>) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        let counts = vec![0; bounds.len() + 1];
        Self {
            bounds,
            counts,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Exponential bounds covering `start * factor^i` for `i in 0..count`,
    /// deduplicated after rounding.
    pub fn exponential(start: u64, factor: f64, count: usize) -> Self {
        let mut bounds = Vec::with_capacity(count);
        let mut edge = start.max(1) as f64;
        for _ in 0..count {
            let b = edge.round() as u64;
            if bounds.last() != Some(&b) {
                bounds.push(b);
            }
            edge *= factor;
        }
        Self::new(bounds)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed sample, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`0.0..=1.0`): the upper bound of the bucket the
    /// nearest-rank sample falls in, clamped to the observed maximum so
    /// quantiles never exceed real data. Monotone in `p` by construction.
    ///
    /// Returns `None` when the histogram is empty — zero samples have no
    /// quantiles, and reporting layers must render that as absence (`-`,
    /// `null`) rather than a fake 0 ns latency. [`Self::quantile`] is the
    /// convenience wrapper that maps absence to 0 for arithmetic contexts.
    pub fn try_quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                let bound = self.bounds.get(idx).copied().unwrap_or(u64::MAX);
                return Some(bound.min(self.max));
            }
        }
        Some(self.max)
    }

    /// [`Self::try_quantile`] with empty mapped to the documented 0.
    pub fn quantile(&self, p: f64) -> u64 {
        self.try_quantile(p).unwrap_or(0)
    }
}

/// Per-worker relaxed counters, cache-line padded so concurrent workers
/// never contend. Each worker writes only its own slot.
pub struct PerWorkerU64 {
    slots: Vec<CachePadded<AtomicU64>>,
}

impl PerWorkerU64 {
    /// One zeroed slot per worker.
    pub fn new(workers: usize) -> Self {
        let mut slots = Vec::with_capacity(workers);
        slots.resize_with(workers, || CachePadded::new(AtomicU64::new(0)));
        Self { slots }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds `v` to `worker`'s slot.
    #[inline]
    pub fn add(&self, worker: usize, v: u64) {
        self.slots[worker].fetch_add(v, Ordering::Relaxed);
    }

    /// Current value of every slot, indexed by worker.
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum over all slots.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_min_matches_legacy_busy_skew() {
        assert_eq!(max_min_ratio([100, 20, 50]), 5.0);
        assert_eq!(max_min_ratio([100, 0]), 100.0); // idle clamped to 1 ns
        assert_eq!(max_min_ratio([]), 0.0);
        assert_eq!(max_min_ratio([0, 0]), 0.0);
    }

    #[test]
    fn max_mean_is_bounded_by_worker_count() {
        assert!((max_mean_ratio([8, 2, 2]) - 2.0).abs() < 1e-12);
        assert!((max_mean_ratio([90, 0, 0]) - 3.0).abs() < 1e-12);
        assert_eq!(max_mean_ratio([]), 0.0);
        assert_eq!(max_mean_ratio([0, 0, 0]), 0.0);
    }

    #[test]
    fn fold_handles_ragged_groups() {
        let groups: Vec<Vec<(u64, u64)>> =
            vec![vec![(10, 1), (20, 2)], vec![(5, 3), (5, 4), (7, 5)]];
        let folded = fold_per_worker(groups.iter().map(Vec::as_slice), |t| t.0);
        assert_eq!(folded, vec![15, 25, 7]);
        let other = fold_per_worker(groups.iter().map(Vec::as_slice), |t| t.1);
        assert_eq!(other, vec![4, 6, 5]);
        let empty: Vec<&[u64]> = Vec::new();
        assert!(fold_per_worker(empty, |&v| v).is_empty());
    }

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.0), 1);
        assert_eq!(percentile(&s, 0.5), 51); // round(0.5 * 99) = 50 → s[50]
        assert_eq!(percentile(&s, 0.99), 99);
        assert_eq!(percentile(&s, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn bounded_histogram_quantiles_track_percentile() {
        let mut h = BoundedHistogram::exponential(1_000, 1.5, 45);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        let samples: Vec<u64> = (1..=1000).map(|i| i * 977).collect();
        for &s in &samples {
            h.observe(s);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.max(), 977_000);
        // Bucket-bound quantiles over- or under-shoot the exact nearest
        // rank by at most one bucket's relative width (factor 1.5).
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let exact = percentile(&sorted, p) as f64;
            let approx = h.quantile(p) as f64;
            assert!(
                approx >= exact / 1.5 && approx <= exact * 1.5,
                "p={p}: approx {approx} vs exact {exact}"
            );
        }
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert_eq!(h.quantile(1.0), 977_000); // clamped to observed max
        let mean = h.mean();
        assert!((mean - 500.5 * 977.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = BoundedHistogram::exponential(1_000, 1.5, 45);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.try_quantile(p), None, "p={p}");
            assert_eq!(h.quantile(p), 0, "p={p}");
        }
        let mut h = h;
        h.observe(42);
        assert_eq!(h.try_quantile(0.5), Some(42));
        assert_eq!(h.try_quantile(1.0), Some(42));
    }

    #[test]
    fn bounded_histogram_overflow_bucket_and_dedup() {
        // Tiny factor forces duplicate rounded edges; they dedup.
        let h = BoundedHistogram::exponential(1, 1.01, 10);
        assert!(h.bounds.windows(2).all(|w| w[0] < w[1]));
        let mut h = BoundedHistogram::new(vec![10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(1_000_000); // lands in the +inf bucket
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn per_worker_slots_are_independent() {
        let pw = PerWorkerU64::new(3);
        pw.add(0, 5);
        pw.add(2, 7);
        pw.add(0, 1);
        assert_eq!(pw.snapshot(), vec![6, 0, 7]);
        assert_eq!(pw.total(), 13);
        assert_eq!(pw.len(), 3);
        assert!(!pw.is_empty());
    }
}
