//! Unified telemetry for the PBFS suite.
//!
//! Two complementary substrates, both designed so the traversal hot path
//! pays (near) nothing for them:
//!
//! * **Metrics** ([`metrics`]): an always-on registry of counters, gauges
//!   and fixed-bucket histograms backed by cache-line-padded relaxed
//!   atomics, aggregated only when scraped. Export as Prometheus text
//!   exposition ([`export::prometheus_text`]) or JSON.
//! * **Tracing** ([`trace`]): per-worker bounded ring buffers of timeline
//!   events (task ranges, steals, BFS iterations and phases, batch
//!   lifecycle), gated on one global flag — a single relaxed load when
//!   off. Export as Chrome trace-event JSON
//!   ([`export::chrome_trace`]) viewable in `chrome://tracing`/Perfetto.
//!
//! The [`agg`] module holds the per-worker skew/imbalance/aggregation math
//! shared by `pbfs_core::stats`, `pbfs_sched::instrument` and the
//! exporters, so every layer reports the same numbers.
//!
//! Library crates use the process-wide [`registry`] and [`recorder`];
//! tests construct private [`Registry`]/[`TraceRecorder`] instances.
//!
//! ```
//! use pbfs_telemetry as telemetry;
//!
//! let queries = telemetry::registry().counter("doc_queries_total", "example");
//! queries.inc();
//! assert!(queries.get() >= 1);
//!
//! let rec = telemetry::TraceRecorder::new(1024, None);
//! rec.set_enabled(true);
//! let t = rec.start();
//! rec.span(0, telemetry::EventKind::Task, t, 64, 0);
//! assert_eq!(rec.drain().total_events(), 1);
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use agg::{
    fold_per_worker, max_mean_ratio, max_min_ratio, percentile, BoundedHistogram, PerWorkerU64,
};
pub use metrics::{
    exponential_buckets, Counter, Exemplar, Gauge, Histogram, HistogramSnapshot, MetricSample,
    Registry, SampleValue, Snapshot,
};
pub use profile::{PhaseRow, TraversalProfile};
pub use trace::{
    engine_lane, EventKind, LaneDump, TraceDump, TraceEvent, TraceRecorder, CLIENT_LANE,
    DEFAULT_RING_CAPACITY, ENGINE_LANE, FIRST_SHARD_LANE, LANES,
};

use std::sync::OnceLock;

/// The process-wide metrics registry all pbfs crates register into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// The process-wide trace recorder all pbfs crates record into. Disabled
/// until something calls `recorder().set_enabled(true)`. Overwritten
/// (dropped) events are counted in the registry's
/// `pbfs_trace_dropped_events_total` (also scraped under the legacy
/// `pbfs_telemetry_dropped_events_total` name).
pub fn recorder() -> &'static TraceRecorder {
    static RECORDER: OnceLock<TraceRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let dropped = registry().counter(
            "pbfs_trace_dropped_events_total",
            "Trace events overwritten because a lane's ring buffer was full",
        );
        registry().counter_alias(
            "pbfs_telemetry_dropped_events_total",
            "Legacy alias of pbfs_trace_dropped_events_total",
            &dropped,
        );
        TraceRecorder::new(DEFAULT_RING_CAPACITY, Some(dropped))
    })
}

/// Registers the `pbfs_build_info` gauge: constant 1 with the build's
/// identity as labels, so every scrape is attributable to a binary. `simd`
/// is the effective bitset-kernel dispatch level (e.g. `avx2`, `scalar`) —
/// bench results from different ISAs must not be compared silently.
pub fn register_build_info(version: &str, git_sha: &str, features: &str, simd: &str) {
    let labels = format!(
        "version=\"{version}\",git_sha=\"{git_sha}\",features=\"{features}\",simd=\"{simd}\""
    );
    registry()
        .gauge_with(
            "pbfs_build_info",
            &labels,
            "Build identity (constant 1; see labels)",
        )
        .set(1);
}

/// Sets the per-graph `pbfs_graph_vertices` / `pbfs_graph_edges` gauges so
/// metric scrapes are attributable to the dataset being served.
pub fn set_graph_info(vertices: u64, edges: u64) {
    registry()
        .gauge("pbfs_graph_vertices", "Vertices in the loaded graph")
        .set(vertices as i64);
    registry()
        .gauge("pbfs_graph_edges", "Undirected edges in the loaded graph")
        .set(edges as i64);
}
