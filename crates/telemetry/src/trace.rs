//! Per-worker timeline tracing: bounded ring buffers of spans and marks.
//!
//! Recording is gated on one global flag read with a single relaxed load;
//! when it is off every record call is a branch on a cached bool, so the
//! tracing layer costs nothing on the hot path until someone turns it on
//! (`pbfs queries --trace-out`, a test, a live debugging session).
//!
//! Each *lane* (worker id, or one of the reserved lanes below) owns a
//! bounded ring: when it fills, the oldest events are overwritten and
//! counted in a dropped-events total, so a runaway trace degrades to "the
//! most recent window" instead of unbounded memory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

use crate::metrics::Counter;

/// Number of timeline lanes. Worker ids map to lanes directly; the top
/// lanes are reserved for non-worker threads.
pub const LANES: usize = 64;

/// Lane used by a query-engine dispatcher thread for batch-lifecycle
/// spans. (The dispatcher also participates as pool worker 0; batch spans
/// get their own timeline so the two are distinguishable in a viewer.)
pub const ENGINE_LANE: usize = LANES - 1;

/// Lane used by client threads submitting queries (submit marks).
pub const CLIENT_LANE: usize = LANES - 2;

/// Lowest lane reserved for the dispatchers of engine shards ≥ 1 (shard 0
/// keeps [`ENGINE_LANE`]). Shards `1..=13` map downward from
/// `CLIENT_LANE - 1`; higher shard ids wrap within the reserved band.
/// Worker lanes below this bound are unaffected — the repo never runs
/// pools wide enough to reach lane 48.
pub const FIRST_SHARD_LANE: usize = LANES - 16;

/// Timeline lane of the engine dispatcher serving `shard`.
///
/// Shard 0 is the classic single-dispatcher lane ([`ENGINE_LANE`]), so
/// unsharded traces are byte-identical to before sharding existed; every
/// further shard gets its own lane in the reserved band just below the
/// client lane.
pub fn engine_lane(shard: usize) -> usize {
    if shard == 0 {
        ENGINE_LANE
    } else {
        let band = CLIENT_LANE - FIRST_SHARD_LANE; // lanes 48..=61
        CLIENT_LANE - 1 - ((shard - 1) % band)
    }
}

/// Default ring capacity per lane.
pub const DEFAULT_RING_CAPACITY: usize = 16 * 1024;

/// What a [`TraceEvent`] describes. Spans have a duration; marks are
/// instantaneous.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// One task range executed by a worker (`a` = items, `b` = 1 if the
    /// range was stolen).
    Task,
    /// A worker took a range from another queue (`a` = victim worker,
    /// `b` = items). Mark.
    Steal,
    /// One BFS iteration (`a` = depth, `b` = states discovered).
    Iteration,
    /// Top-down phase 1: frontier expansion (`a` = frontier vertices).
    TopDownPhase1,
    /// Top-down phase 2: discovery/filter (`a` = frontier vertices).
    TopDownPhase2,
    /// Bottom-up pull phase (`a` = frontier vertices).
    BottomUp,
    /// The direction policy switched direction (`a` = depth, `b` = 1 for
    /// bottom-up, 0 for top-down). Mark.
    DirectionSwitch,
    /// One query's submit→coalesce wait: starts when the query entered the
    /// engine queue, ends when the dispatcher drained it into a batch
    /// (`a` = source, `b` = query id).
    BatchSubmit,
    /// Oldest-submit → batch-drain interval: how long queries waited for
    /// co-batched company (`a` = batch size, `b` = chosen width).
    BatchCoalesce,
    /// The BFS execution of one flushed batch (`a` = width, `b` = batch
    /// size).
    BatchFlush,
    /// A batch's results were delivered (`a` = width, `b` = batch size).
    /// Mark.
    BatchComplete,
    /// A batch's execution panicked and every query in it failed with a
    /// typed error (`a` = width, `b` = batch size). Mark.
    BatchFailed,
    /// A pool worker panicked inside a parallel loop body (`a` = worker,
    /// `b` = dispatch epoch). Mark.
    WorkerPanic,
    /// The adaptive frontier controller switched scan strategy or
    /// direction (`a` = depth, `b` = encoded from/to strategy pair). Mark.
    AdaptSwitch,
    /// The graph store published a new epoch (`a` = epoch, `b` = cause:
    /// 0 = mutation batch, 1 = compaction, 2 = partition attach). Mark.
    EpochPublish,
    /// A batch pinned a storage epoch for its traversal (`a` = epoch,
    /// `b` = batch width); the ctx links it to the batch's query set. Mark.
    EpochPin,
}

impl EventKind {
    /// Short stable name (Chrome trace event `name`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Task => "task",
            EventKind::Steal => "steal",
            EventKind::Iteration => "iteration",
            EventKind::TopDownPhase1 => "top_down_phase1",
            EventKind::TopDownPhase2 => "top_down_phase2",
            EventKind::BottomUp => "bottom_up",
            EventKind::DirectionSwitch => "direction_switch",
            EventKind::BatchSubmit => "batch_submit",
            EventKind::BatchCoalesce => "batch_coalesce",
            EventKind::BatchFlush => "batch_flush",
            EventKind::BatchComplete => "batch_complete",
            EventKind::BatchFailed => "batch_failed",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::AdaptSwitch => "adapt_switch",
            EventKind::EpochPublish => "epoch_publish",
            EventKind::EpochPin => "epoch_pin",
        }
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Task | EventKind::Steal | EventKind::WorkerPanic => "sched",
            EventKind::Iteration
            | EventKind::TopDownPhase1
            | EventKind::TopDownPhase2
            | EventKind::BottomUp
            | EventKind::DirectionSwitch
            | EventKind::AdaptSwitch => "bfs",
            EventKind::BatchSubmit
            | EventKind::BatchCoalesce
            | EventKind::BatchFlush
            | EventKind::BatchComplete
            | EventKind::BatchFailed => "engine",
            EventKind::EpochPublish | EventKind::EpochPin => "storage",
        }
    }

    /// True for duration events, false for instant marks.
    pub fn is_span(self) -> bool {
        !matches!(
            self,
            EventKind::Steal
                | EventKind::DirectionSwitch
                | EventKind::BatchComplete
                | EventKind::BatchFailed
                | EventKind::WorkerPanic
                | EventKind::AdaptSwitch
        )
    }

    /// Names of the `a`/`b` payload fields (Chrome trace `args` keys).
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            EventKind::Task => ("items", "stolen"),
            EventKind::Steal => ("victim", "items"),
            EventKind::Iteration => ("depth", "discovered"),
            EventKind::TopDownPhase1 | EventKind::TopDownPhase2 | EventKind::BottomUp => {
                ("frontier_vertices", "unused")
            }
            EventKind::DirectionSwitch => ("depth", "bottom_up"),
            EventKind::BatchSubmit => ("source", "query"),
            EventKind::BatchCoalesce => ("batch", "width"),
            EventKind::BatchFlush => ("width", "batch"),
            EventKind::BatchComplete => ("width", "batch"),
            EventKind::BatchFailed => ("width", "batch"),
            EventKind::WorkerPanic => ("worker", "epoch"),
            EventKind::AdaptSwitch => ("depth", "strategy"),
            EventKind::EpochPublish => ("epoch", "cause"),
            EventKind::EpochPin => ("epoch", "width"),
        }
    }
}

/// One recorded timeline event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: EventKind,
    /// Nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for marks).
    pub dur_ns: u64,
    /// First payload field (see [`EventKind::arg_names`]).
    pub a: u64,
    /// Second payload field.
    pub b: u64,
    /// Query-set id causally linking this event to the batch that produced
    /// it (`0` = unattributed — the event happened outside any batch).
    pub qset: u64,
}

/// Bounded event ring: oldest events are overwritten once full.
struct Ring {
    buf: Vec<TraceEvent>,
    /// Total events ever pushed; `buf` holds the last `min(head, cap)`.
    head: u64,
}

impl Ring {
    fn push(&mut self, cap: usize, e: TraceEvent) -> bool {
        let dropped = if self.buf.len() < cap {
            self.buf.push(e);
            false
        } else {
            let idx = (self.head % cap as u64) as usize;
            self.buf[idx] = e;
            true
        };
        self.head += 1;
        dropped
    }

    fn drain(&mut self, cap: usize) -> (Vec<TraceEvent>, u64) {
        let dropped = self.head.saturating_sub(self.buf.len() as u64);
        let events = if self.head > cap as u64 {
            // The ring wrapped: chronological order starts at head % cap.
            let split = (self.head % cap as u64) as usize;
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[split..]);
            out.extend_from_slice(&self.buf[..split]);
            out
        } else {
            std::mem::take(&mut self.buf)
        };
        self.buf = Vec::new();
        self.head = 0;
        (events, dropped)
    }
}

/// The per-lane timeline recorder. Usually accessed through the global
/// [`crate::recorder`]; tests construct their own.
pub struct TraceRecorder {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    lanes: Vec<CachePadded<Mutex<Ring>>>,
    dropped: Option<Arc<Counter>>,
}

impl TraceRecorder {
    /// A disabled recorder with `capacity` events per lane. `dropped`, if
    /// given, is incremented for every overwritten event (wire it to a
    /// registry counter so drops are observable).
    pub fn new(capacity: usize, dropped: Option<Arc<Counter>>) -> Self {
        let mut lanes = Vec::with_capacity(LANES);
        lanes.resize_with(LANES, || {
            CachePadded::new(Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
            }))
        });
        Self {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            lanes,
            dropped,
        }
    }

    /// Turns recording on or off. Off is the default; all record calls
    /// reduce to one relaxed load while off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts timing a span: `Some(now)` while recording, `None` (free)
    /// while off. Pass the result to [`Self::span`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span begun with [`Self::start`]; no-op if it returned `None`.
    #[inline]
    pub fn span(&self, lane: usize, kind: EventKind, started: Option<Instant>, a: u64, b: u64) {
        if let Some(t0) = started {
            self.span_at_ctx(lane, kind, t0, t0.elapsed(), a, b, 0);
        }
    }

    /// Like [`Self::span`] but attributes the span to query-set `qset`.
    #[inline]
    pub fn span_ctx(
        &self,
        lane: usize,
        kind: EventKind,
        started: Option<Instant>,
        a: u64,
        b: u64,
        qset: u64,
    ) {
        if let Some(t0) = started {
            self.span_at_ctx(lane, kind, t0, t0.elapsed(), a, b, qset);
        }
    }

    /// Records a span from an externally measured `(start, duration)`
    /// pair; no-op while recording is off.
    #[inline]
    pub fn span_at(
        &self,
        lane: usize,
        kind: EventKind,
        start: Instant,
        dur: Duration,
        a: u64,
        b: u64,
    ) {
        self.span_at_ctx(lane, kind, start, dur, a, b, 0);
    }

    /// Like [`Self::span_at`] but attributes the span to query-set `qset`.
    #[allow(clippy::too_many_arguments)]
    pub fn span_at_ctx(
        &self,
        lane: usize,
        kind: EventKind,
        start: Instant,
        dur: Duration,
        a: u64,
        b: u64,
        qset: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push(
            lane,
            TraceEvent {
                kind,
                start_ns: start.saturating_duration_since(self.epoch).as_nanos() as u64,
                dur_ns: dur.as_nanos() as u64,
                a,
                b,
                qset,
            },
        );
    }

    /// Records an instantaneous mark; no-op while recording is off.
    #[inline]
    pub fn mark(&self, lane: usize, kind: EventKind, a: u64, b: u64) {
        self.mark_ctx(lane, kind, a, b, 0);
    }

    /// Like [`Self::mark`] but attributes the mark to query-set `qset`.
    #[inline]
    pub fn mark_ctx(&self, lane: usize, kind: EventKind, a: u64, b: u64, qset: u64) {
        if !self.is_enabled() {
            return;
        }
        self.push(
            lane,
            TraceEvent {
                kind,
                start_ns: self.epoch.elapsed().as_nanos() as u64,
                dur_ns: 0,
                a,
                b,
                qset,
            },
        );
    }

    fn push(&self, lane: usize, e: TraceEvent) {
        let mut ring = self.lanes[lane % LANES].lock();
        if ring.push(self.capacity, e) {
            if let Some(c) = &self.dropped {
                c.add_at(lane, 1);
            }
        }
    }

    /// Takes every recorded event, emptying all rings. Lanes that never
    /// recorded anything are omitted.
    pub fn drain(&self) -> TraceDump {
        let mut lanes = Vec::new();
        for (id, lane) in self.lanes.iter().enumerate() {
            let (events, dropped) = lane.lock().drain(self.capacity);
            if !events.is_empty() || dropped > 0 {
                lanes.push(LaneDump {
                    lane: id,
                    events,
                    dropped,
                });
            }
        }
        TraceDump { lanes }
    }
}

/// Drained contents of one lane's ring.
#[derive(Clone, Debug)]
pub struct LaneDump {
    /// Lane id (worker id, [`ENGINE_LANE`], or [`CLIENT_LANE`]).
    pub lane: usize,
    /// Events in chronological push order (the newest `capacity` ones).
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

/// Drained contents of a whole recorder.
#[derive(Clone, Debug, Default)]
pub struct TraceDump {
    /// Per-lane dumps, ordered by lane id; empty lanes omitted.
    pub lanes: Vec<LaneDump>,
}

impl TraceDump {
    /// Total events across all lanes.
    pub fn total_events(&self) -> usize {
        self.lanes.iter().map(|l| l.events.len()).sum()
    }

    /// Total dropped events across all lanes.
    pub fn total_dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// Iterates over all events of the given kind, with their lane.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = (usize, &TraceEvent)> {
        self.lanes.iter().flat_map(move |l| {
            l.events
                .iter()
                .filter(move |e| e.kind == kind)
                .map(move |e| (l.lane, e))
        })
    }

    /// Human-readable name for a lane in exports.
    pub fn lane_name(lane: usize) -> String {
        match lane {
            ENGINE_LANE => "engine".to_string(),
            CLIENT_LANE => "clients".to_string(),
            l if (FIRST_SHARD_LANE..CLIENT_LANE).contains(&l) => {
                format!("engine-shard-{}", CLIENT_LANE - l)
            }
            w => format!("worker-{w}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = TraceRecorder::new(8, None);
        assert!(rec.start().is_none());
        rec.mark(0, EventKind::Steal, 1, 2);
        rec.span(0, EventKind::Task, rec.start(), 1, 0);
        assert_eq!(rec.drain().total_events(), 0);
    }

    #[test]
    fn spans_and_marks_round_trip() {
        let rec = TraceRecorder::new(8, None);
        rec.set_enabled(true);
        let t = rec.start();
        assert!(t.is_some());
        rec.span(3, EventKind::Task, t, 128, 1);
        rec.mark(3, EventKind::Steal, 2, 128);
        let dump = rec.drain();
        assert_eq!(dump.lanes.len(), 1);
        assert_eq!(dump.lanes[0].lane, 3);
        let events = &dump.lanes[0].events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Task);
        assert_eq!((events[0].a, events[0].b), (128, 1));
        assert_eq!(events[1].kind, EventKind::Steal);
        assert_eq!(events[1].dur_ns, 0);
        assert!(events[1].start_ns >= events[0].start_ns);
        // Drained rings are empty.
        assert_eq!(rec.drain().total_events(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let dropped = Arc::new(Counter::new());
        let rec = TraceRecorder::new(4, Some(Arc::clone(&dropped)));
        rec.set_enabled(true);
        for i in 0..10u64 {
            rec.mark(1, EventKind::Steal, i, 0);
        }
        let dump = rec.drain();
        assert_eq!(dump.lanes[0].dropped, 6);
        assert_eq!(dropped.get(), 6);
        // The surviving events are the newest four, oldest first.
        let kept: Vec<u64> = dump.lanes[0].events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disable_mid_span_drops_the_span() {
        let rec = TraceRecorder::new(8, None);
        rec.set_enabled(true);
        let t = rec.start();
        rec.set_enabled(false);
        rec.span(0, EventKind::Task, t, 0, 0);
        rec.set_enabled(true);
        assert_eq!(rec.drain().total_events(), 0);
    }

    #[test]
    fn qset_round_trips_and_defaults_to_zero() {
        let rec = TraceRecorder::new(8, None);
        rec.set_enabled(true);
        let t = rec.start();
        rec.span_ctx(0, EventKind::BatchFlush, t, 64, 3, 7);
        rec.mark_ctx(0, EventKind::BatchComplete, 64, 3, 7);
        rec.mark(0, EventKind::Steal, 1, 2);
        let dump = rec.drain();
        let events = &dump.lanes[0].events;
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].qset, 7);
        assert_eq!(events[1].qset, 7);
        assert_eq!(events[2].qset, 0);
    }

    #[test]
    fn batch_submit_is_a_span() {
        assert!(EventKind::BatchSubmit.is_span());
    }

    #[test]
    fn lane_names() {
        assert_eq!(TraceDump::lane_name(0), "worker-0");
        assert_eq!(TraceDump::lane_name(ENGINE_LANE), "engine");
        assert_eq!(TraceDump::lane_name(CLIENT_LANE), "clients");
        assert_eq!(TraceDump::lane_name(CLIENT_LANE - 1), "engine-shard-1");
        assert_eq!(TraceDump::lane_name(FIRST_SHARD_LANE), "engine-shard-14");
    }

    #[test]
    fn shard_lanes_are_distinct_and_reserved() {
        assert_eq!(engine_lane(0), ENGINE_LANE);
        assert_eq!(engine_lane(1), CLIENT_LANE - 1);
        assert_eq!(engine_lane(2), CLIENT_LANE - 2);
        // Distinct per shard up to the reserved band, never colliding with
        // the client or the shard-0 engine lane.
        let lanes: std::collections::HashSet<usize> = (0..14).map(engine_lane).collect();
        assert_eq!(lanes.len(), 14);
        for s in 1..64 {
            let l = engine_lane(s);
            assert!((FIRST_SHARD_LANE..CLIENT_LANE).contains(&l), "shard {s}");
        }
    }
}
