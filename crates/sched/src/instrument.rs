//! Per-worker instrumentation for the skew and utilization experiments.
//!
//! Figures 2, 6, 7 and 9 of the paper measure *per-worker* quantities:
//! busy time per iteration, visited neighbors, updated states, and CPU
//! utilization. The pool records scheduling-level numbers (busy time, task
//! counts, stealing, NUMA locality) here; algorithm-level work counters
//! (neighbors visited, states updated) are added by the BFS crate through
//! [`WorkerRun::work_units`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::utils::CachePadded;
use pbfs_telemetry::{Counter, EventKind};

/// Always-on scheduler counters in the global telemetry registry.
struct SchedMetrics {
    tasks: Arc<Counter>,
    steals: Arc<Counter>,
    remote: Arc<Counter>,
    worker_panics: Arc<Counter>,
}

fn metrics() -> &'static SchedMetrics {
    static METRICS: OnceLock<SchedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = pbfs_telemetry::registry();
        SchedMetrics {
            tasks: r.counter(
                "pbfs_sched_tasks_total",
                "Task ranges executed by the work-stealing pool",
            ),
            steals: r.counter(
                "pbfs_sched_steals_total",
                "Task ranges taken from another worker's queue",
            ),
            remote: r.counter(
                "pbfs_sched_remote_steals_total",
                "Stolen task ranges whose owning queue lives on another NUMA node",
            ),
            worker_panics: r.counter(
                "pbfs_sched_worker_panics_total",
                "Panics caught on pool workers inside parallel loop bodies",
            ),
        }
    })
}

/// Records one caught worker panic: an always-on counter plus a trace mark
/// on the worker's lane, so panics show up in `pbfs metrics` output and
/// Chrome traces instead of being stderr-only noise.
pub(crate) fn note_panic(worker: usize, epoch: u64) {
    metrics().worker_panics.add_at(worker, 1);
    let rec = pbfs_telemetry::recorder();
    if rec.is_enabled() {
        rec.mark(worker, EventKind::WorkerPanic, worker as u64, epoch);
    }
}

/// Folds one worker's per-loop totals into the global registry: one
/// `add` per metric per loop, so the always-on cost is independent of the
/// task count.
pub(crate) fn note_loop(worker: usize, tasks: u64, stolen: u64, remote: u64) {
    if tasks == 0 {
        return;
    }
    let m = metrics();
    m.tasks.add_at(worker, tasks);
    if stolen > 0 {
        m.steals.add_at(worker, stolen);
    }
    if remote > 0 {
        m.remote.add_at(worker, remote);
    }
}

/// What one worker did during one parallel loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerRun {
    /// Nanoseconds spent executing task bodies (excludes idling/waiting).
    pub busy_ns: u64,
    /// Task ranges executed.
    pub tasks: u64,
    /// Task ranges taken from another worker's queue.
    pub stolen: u64,
    /// Task ranges whose owning queue lives on a different NUMA node.
    pub remote: u64,
    /// Items (e.g. vertices) covered by the executed ranges.
    pub items: u64,
    /// Algorithm-defined work units (e.g. neighbors visited or vertex
    /// states updated), reported via [`Probe::add_work`].
    pub work_units: u64,
}

/// Aggregated statistics of one parallel loop.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Per-worker breakdown, indexed by worker id.
    pub per_worker: Vec<WorkerRun>,
    /// Wall-clock duration of the whole loop in nanoseconds.
    pub wall_ns: u64,
}

impl RunStats {
    /// Parallel utilization in `[0, 1]`: total busy time over
    /// `workers × wall time`. This is the quantity plotted in Figure 2.
    pub fn utilization(&self) -> f64 {
        if self.per_worker.is_empty() || self.wall_ns == 0 {
            return 0.0;
        }
        let busy: u64 = self.per_worker.iter().map(|w| w.busy_ns).sum();
        busy as f64 / (self.per_worker.len() as f64 * self.wall_ns as f64)
    }

    /// Ratio of the longest to the shortest per-worker busy time — the skew
    /// metric of Figure 9 ([`pbfs_telemetry::max_min_ratio`]). Workers with
    /// zero busy time are clamped to 1 ns so the ratio stays finite.
    pub fn busy_skew(&self) -> f64 {
        pbfs_telemetry::max_min_ratio(self.per_worker.iter().map(|w| w.busy_ns))
    }

    /// Ratio of the largest to the smallest per-worker `work_units`
    /// (deterministic skew metric; used alongside [`Self::busy_skew`]
    /// because wall-clock skew is noisy on an oversubscribed single core).
    pub fn work_skew(&self) -> f64 {
        pbfs_telemetry::max_min_ratio(self.per_worker.iter().map(|w| w.work_units))
    }

    /// Total task ranges executed.
    pub fn total_tasks(&self) -> u64 {
        self.per_worker.iter().map(|w| w.tasks).sum()
    }

    /// Total stolen task ranges.
    pub fn total_stolen(&self) -> u64 {
        self.per_worker.iter().map(|w| w.stolen).sum()
    }

    /// Total task ranges executed on a remote NUMA node.
    pub fn total_remote(&self) -> u64 {
        self.per_worker.iter().map(|w| w.remote).sum()
    }

    /// Total algorithm work units.
    pub fn total_work(&self) -> u64 {
        self.per_worker.iter().map(|w| w.work_units).sum()
    }

    /// Merges another loop's stats into this one (summing workers
    /// position-wise and wall time; used to accumulate a whole BFS from its
    /// per-phase loops).
    pub fn merge(&mut self, other: &RunStats) {
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker
                .resize(other.per_worker.len(), WorkerRun::default());
        }
        for (a, b) in self.per_worker.iter_mut().zip(other.per_worker.iter()) {
            a.busy_ns += b.busy_ns;
            a.tasks += b.tasks;
            a.stolen += b.stolen;
            a.remote += b.remote;
            a.items += b.items;
            a.work_units += b.work_units;
        }
        self.wall_ns += other.wall_ns;
    }
}

/// Shared collector the pool writes into during an instrumented loop. One
/// cache-line-padded slot per worker; each worker only touches its own slot,
/// so relaxed atomics suffice and there is no cross-worker contention.
pub(crate) struct Collector {
    slots: Vec<CachePadded<Slot>>,
}

#[derive(Default)]
struct Slot {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
    stolen: AtomicU64,
    remote: AtomicU64,
    items: AtomicU64,
    work_units: AtomicU64,
}

impl Collector {
    pub(crate) fn new(workers: usize) -> Self {
        let mut slots = Vec::with_capacity(workers);
        slots.resize_with(workers, || CachePadded::new(Slot::default()));
        Self { slots }
    }

    pub(crate) fn record(
        &self,
        worker: usize,
        busy_ns: u64,
        tasks: u64,
        stolen: u64,
        remote: u64,
        items: u64,
    ) {
        let s = &self.slots[worker];
        s.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
        s.tasks.fetch_add(tasks, Ordering::Relaxed);
        s.stolen.fetch_add(stolen, Ordering::Relaxed);
        s.remote.fetch_add(remote, Ordering::Relaxed);
        s.items.fetch_add(items, Ordering::Relaxed);
        note_loop(worker, tasks, stolen, remote);
    }

    pub(crate) fn add_work(&self, worker: usize, units: u64) {
        self.slots[worker]
            .work_units
            .fetch_add(units, Ordering::Relaxed);
    }

    pub(crate) fn finish(self, wall_ns: u64) -> RunStats {
        let per_worker = self
            .slots
            .into_iter()
            .map(|s| WorkerRun {
                busy_ns: s.busy_ns.load(Ordering::Relaxed),
                tasks: s.tasks.load(Ordering::Relaxed),
                stolen: s.stolen.load(Ordering::Relaxed),
                remote: s.remote.load(Ordering::Relaxed),
                items: s.items.load(Ordering::Relaxed),
                work_units: s.work_units.load(Ordering::Relaxed),
            })
            .collect();
        RunStats {
            per_worker,
            wall_ns,
        }
    }
}

/// Handle passed to instrumented loop bodies for reporting algorithm-level
/// work units (neighbors visited, states updated, …).
pub struct Probe<'a> {
    pub(crate) collector: Option<&'a Collector>,
    pub(crate) worker: usize,
}

impl Probe<'_> {
    /// Adds `units` of algorithm-defined work to this worker's tally.
    /// No-op when the loop is not instrumented.
    #[inline]
    pub fn add_work(&self, units: u64) {
        if let Some(c) = self.collector {
            c.add_work(self.worker, units);
        }
    }

    /// A disabled probe (for uninstrumented fast paths).
    pub const DISABLED: Probe<'static> = Probe {
        collector: None,
        worker: 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_of_balanced_run() {
        let stats = RunStats {
            per_worker: vec![
                WorkerRun {
                    busy_ns: 100,
                    ..Default::default()
                },
                WorkerRun {
                    busy_ns: 100,
                    ..Default::default()
                },
            ],
            wall_ns: 100,
        };
        assert!((stats.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_half_idle_run() {
        let stats = RunStats {
            per_worker: vec![
                WorkerRun {
                    busy_ns: 100,
                    ..Default::default()
                },
                WorkerRun {
                    busy_ns: 0,
                    ..Default::default()
                },
            ],
            wall_ns: 100,
        };
        assert!((stats.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skew_metrics() {
        let stats = RunStats {
            per_worker: vec![
                WorkerRun {
                    busy_ns: 1500,
                    work_units: 30,
                    ..Default::default()
                },
                WorkerRun {
                    busy_ns: 100,
                    work_units: 10,
                    ..Default::default()
                },
            ],
            wall_ns: 1500,
        };
        assert!((stats.busy_skew() - 15.0).abs() < 1e-12);
        assert!((stats.work_skew() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = RunStats::default();
        assert_eq!(stats.utilization(), 0.0);
        assert_eq!(stats.busy_skew(), 0.0);
        assert_eq!(stats.total_tasks(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RunStats {
            per_worker: vec![WorkerRun {
                busy_ns: 10,
                tasks: 1,
                ..Default::default()
            }],
            wall_ns: 10,
        };
        let b = RunStats {
            per_worker: vec![
                WorkerRun {
                    busy_ns: 5,
                    tasks: 2,
                    stolen: 1,
                    ..Default::default()
                },
                WorkerRun {
                    busy_ns: 7,
                    tasks: 3,
                    ..Default::default()
                },
            ],
            wall_ns: 7,
        };
        a.merge(&b);
        assert_eq!(a.per_worker.len(), 2);
        assert_eq!(a.per_worker[0].busy_ns, 15);
        assert_eq!(a.per_worker[0].tasks, 3);
        assert_eq!(a.per_worker[1].busy_ns, 7);
        assert_eq!(a.wall_ns, 17);
        assert_eq!(a.total_stolen(), 1);
    }

    #[test]
    fn collector_roundtrip() {
        let c = Collector::new(2);
        c.record(0, 100, 2, 1, 0, 512);
        c.add_work(0, 42);
        c.record(1, 50, 1, 0, 1, 256);
        let stats = c.finish(120);
        assert_eq!(stats.per_worker[0].busy_ns, 100);
        assert_eq!(stats.per_worker[0].work_units, 42);
        assert_eq!(stats.per_worker[1].remote, 1);
        assert_eq!(stats.wall_ns, 120);
        assert_eq!(stats.total_tasks(), 3);
    }
}
