//! Task creation and lock-free retrieval (Listings 5 and 6 of the paper).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::utils::CachePadded;

use crate::WorkerId;

/// Default number of items per task range.
///
/// Section 4.2.1: ranges of 256+ vertices keep scheduling overhead below 1 %
/// of total runtime for graphs with more than a million vertices while still
/// yielding thousands of tasks for load balancing.
pub const DEFAULT_SPLIT_SIZE: usize = 256;

/// Rounds `split` up to a positive multiple of `align`.
///
/// Task ranges often must respect a storage granularity: a 64-bit word of
/// bit-state, or a 64-entry summary chunk, must never straddle two workers'
/// ranges or conflict-free phases would share cache lines (and summary bits
/// could be cleared out from under a concurrent scan). `align <= 1` returns
/// `split` unchanged (but at least 1).
#[inline]
pub const fn aligned_split(split: usize, align: usize) -> usize {
    let split = if split == 0 { 1 } else { split };
    if align <= 1 {
        split
    } else {
        split.next_multiple_of(align)
    }
}

/// One per-worker queue: an index to the next unclaimed task plus the list
/// of task ranges assigned to this worker at creation time.
struct Queue {
    next: CachePadded<AtomicUsize>,
    tasks: Vec<Range<usize>>,
}

/// Per-worker task queues over the index range `0..total`.
///
/// Tasks are contiguous ranges of `split_size` items, dealt round-robin to
/// the workers' queues (`create_tasks`, Listing 5), so queue lengths differ
/// by at most one. Retrieval ([`TaskQueues::fetch`]) first drains the
/// worker's own queue and then steals from the other queues in round-robin
/// order (`fetch_task`, Listing 6).
///
/// ```
/// use pbfs_sched::TaskQueues;
///
/// let q = TaskQueues::new(1000, 256, 2);
/// assert_eq!(q.num_tasks(), 4);
/// let mut cursor = 0;
/// let (range, from) = q.fetch(0, &mut cursor).unwrap();
/// assert_eq!(range, 0..256);
/// assert_eq!(from, 0);
/// ```
pub struct TaskQueues {
    queues: Vec<Queue>,
    num_tasks: usize,
    total: usize,
    split_size: usize,
}

impl TaskQueues {
    /// `create_tasks` (Listing 5): split `0..total` into ranges of
    /// `split_size` items and deal them round-robin across `num_workers`
    /// queues.
    ///
    /// # Panics
    /// Panics if `split_size == 0` or `num_workers == 0`.
    pub fn new(total: usize, split_size: usize, num_workers: usize) -> Self {
        assert!(split_size > 0, "split_size must be positive");
        assert!(num_workers > 0, "num_workers must be positive");
        let num_tasks = total.div_ceil(split_size);
        let mut worker_tasks: Vec<Vec<Range<usize>>> = (0..num_workers)
            .map(|w| Vec::with_capacity(num_tasks.div_ceil(num_workers) + usize::from(w == 0)))
            .collect();
        let mut cur_worker = 0usize;
        let mut offset = 0usize;
        while offset < total {
            let end = (offset + split_size).min(total);
            worker_tasks[cur_worker % num_workers].push(offset..end);
            cur_worker += 1;
            offset = end;
        }
        let queues = worker_tasks
            .into_iter()
            .map(|tasks| Queue {
                next: CachePadded::new(AtomicUsize::new(0)),
                tasks,
            })
            .collect();
        Self {
            queues,
            num_tasks,
            total,
            split_size,
        }
    }

    /// Total number of task ranges across all queues.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Number of worker queues.
    #[inline]
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Number of items covered (`0..total`).
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Items per task range (last range may be shorter).
    #[inline]
    pub fn split_size(&self) -> usize {
        self.split_size
    }

    /// `fetch_task` (Listing 6): claim the next task, preferring the
    /// worker's own queue, then stealing round-robin from the others.
    ///
    /// `cursor` is the resume-offset optimization from the paper: it
    /// remembers the queue offset where the previous task was found so each
    /// exhausted queue is skipped at most once per worker. Initialize it to
    /// `0` before the first call and reuse it across calls.
    ///
    /// Returns the claimed range and the queue index it came from (equal to
    /// `worker` when no stealing happened), or `None` when every queue is
    /// exhausted. The atomic increment is elided on queues whose counter
    /// already passed their task count ("incrementing `curTaskIx` only if
    /// the queue is not empty avoids atomic writes").
    #[inline]
    pub fn fetch(&self, worker: WorkerId, cursor: &mut usize) -> Option<(Range<usize>, usize)> {
        crate::fail_point!("sched.task.fetch");
        let n = self.queues.len();
        debug_assert!(worker < n);
        let start = *cursor;
        let mut offset = start;
        loop {
            let qi = (worker + offset) % n;
            let queue = &self.queues[qi];
            let len = queue.tasks.len();
            // Read-only emptiness check first: no atomic write on drained
            // queues, hence no cache line ping-pong for other visitors.
            if queue.next.load(Ordering::Relaxed) < len {
                let task_id = queue.next.fetch_add(1, Ordering::Relaxed);
                if task_id < len {
                    *cursor = offset;
                    return Some((queue.tasks[task_id].clone(), qi));
                }
            }
            offset += 1;
            if offset - start >= n {
                return None;
            }
        }
    }

    /// The queue (= worker) that owns the task range beginning at item
    /// `offset`. Ownership follows the round-robin deal of
    /// [`TaskQueues::new`], which is also the deterministic data-placement
    /// rule of Section 4.4: the owner initializes (and therefore hosts) the
    /// backing memory of its ranges.
    #[inline]
    pub fn owner_of_offset(&self, offset: usize) -> WorkerId {
        debug_assert!(offset < self.total.max(1));
        (offset / self.split_size) % self.queues.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(q: &TaskQueues, worker: WorkerId) -> Vec<Range<usize>> {
        let mut cursor = 0;
        let mut out = Vec::new();
        while let Some((r, _)) = q.fetch(worker, &mut cursor) {
            out.push(r);
        }
        out
    }

    #[test]
    fn aligned_split_rounds_up() {
        assert_eq!(aligned_split(256, 64), 256);
        assert_eq!(aligned_split(17, 64), 64);
        assert_eq!(aligned_split(65, 64), 128);
        assert_eq!(aligned_split(100, 1), 100);
        assert_eq!(aligned_split(100, 0), 100);
        assert_eq!(aligned_split(0, 64), 64);
        assert_eq!(aligned_split(0, 0), 1);
    }

    #[test]
    fn round_robin_assignment() {
        let q = TaskQueues::new(10, 2, 3);
        assert_eq!(q.num_tasks(), 5);
        // Tasks 0..5 dealt to queues 0,1,2,0,1.
        assert_eq!(q.queues[0].tasks, vec![0..2, 6..8]);
        assert_eq!(q.queues[1].tasks, vec![2..4, 8..10]);
        assert_eq!(q.queues[2].tasks, vec![4..6]);
    }

    #[test]
    fn queue_sizes_differ_by_at_most_one() {
        for total in [0usize, 1, 255, 256, 1000, 4097] {
            for workers in [1usize, 2, 7, 16] {
                let q = TaskQueues::new(total, 64, workers);
                let lens: Vec<usize> = q.queues.iter().map(|qq| qq.tasks.len()).collect();
                let max = *lens.iter().max().unwrap();
                let min = *lens.iter().min().unwrap();
                assert!(
                    max - min <= 1,
                    "total={total} workers={workers} lens={lens:?}"
                );
            }
        }
    }

    #[test]
    fn fetch_drains_exact_partition() {
        let q = TaskQueues::new(1003, 17, 4);
        let ranges = drain_all(&q, 2);
        let mut covered = BTreeSet::new();
        for r in &ranges {
            for i in r.clone() {
                assert!(covered.insert(i), "item {i} claimed twice");
            }
        }
        assert_eq!(covered.len(), 1003);
        assert_eq!(*covered.first().unwrap(), 0);
        assert_eq!(*covered.last().unwrap(), 1002);
    }

    #[test]
    fn fetch_prefers_own_queue() {
        let q = TaskQueues::new(8, 2, 2);
        let mut cursor = 0;
        let (r, from) = q.fetch(1, &mut cursor).unwrap();
        assert_eq!(from, 1);
        assert_eq!(r, 2..4);
    }

    #[test]
    fn stealing_reports_source_queue() {
        let q = TaskQueues::new(4, 2, 2);
        // Drain queue 1's single task, then fetch again: must steal from 0.
        let mut cursor = 0;
        let (_, from) = q.fetch(1, &mut cursor).unwrap();
        assert_eq!(from, 1);
        let (_, from) = q.fetch(1, &mut cursor).unwrap();
        assert_eq!(from, 0);
        assert!(q.fetch(1, &mut cursor).is_none());
    }

    #[test]
    fn empty_total_yields_nothing() {
        let q = TaskQueues::new(0, 256, 4);
        assert_eq!(q.num_tasks(), 0);
        let mut cursor = 0;
        assert!(q.fetch(0, &mut cursor).is_none());
    }

    #[test]
    fn owner_of_offset_matches_deal() {
        let q = TaskQueues::new(1000, 100, 3);
        assert_eq!(q.owner_of_offset(0), 0);
        assert_eq!(q.owner_of_offset(99), 0);
        assert_eq!(q.owner_of_offset(100), 1);
        assert_eq!(q.owner_of_offset(250), 2);
        assert_eq!(q.owner_of_offset(300), 0);
    }

    #[test]
    fn concurrent_fetch_claims_each_task_once() {
        use std::sync::Mutex;
        let q = TaskQueues::new(100_000, 64, 8);
        let claimed = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..8 {
                let q = &q;
                let claimed = &claimed;
                s.spawn(move || {
                    let mut local = Vec::new();
                    let mut cursor = 0;
                    while let Some((r, _)) = q.fetch(w, &mut cursor) {
                        local.push(r);
                    }
                    claimed.lock().unwrap().extend(local);
                });
            }
        });
        let mut items = vec![false; 100_000];
        for r in claimed.lock().unwrap().iter() {
            for i in r.clone() {
                assert!(!items[i], "item {i} claimed twice");
                items[i] = true;
            }
        }
        assert!(items.iter().all(|&b| b));
    }
}
