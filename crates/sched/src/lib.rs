//! The (S)MS-PBFS scheduler: per-worker task queues with low-overhead work
//! stealing, a persistent worker pool, and a (simulated) NUMA topology.
//!
//! This crate implements Section 4 of *"Parallel Array-Based Single- and
//! Multi-Source Breadth First Searches on Large Dense Graphs"* (EDBT 2017):
//!
//! * [`TaskQueues`] — task creation (`create_tasks`, Listing 5) and the
//!   lock-free task retrieval with resume-offset work stealing
//!   (`fetch_task`, Listing 6).
//! * [`WorkerPool`] — the parallelized for loop (Listing 7): persistent
//!   workers that fetch task ranges until all queues are drained, with the
//!   calling thread participating as worker 0.
//! * [`Topology`] — a NUMA model mapping workers and task ranges to nodes.
//!   On the evaluation machine of the paper this corresponds to real
//!   sockets; here it is simulated so locality (local vs. stolen vs. remote
//!   task executions) is *measured* rather than assumed. See DESIGN.md for
//!   the substitution rationale.
//! * [`RunStats`] — per-worker instrumentation (busy time, tasks executed /
//!   stolen / remote) powering the utilization and skew experiments
//!   (Figures 2, 6, 7, 9 of the paper).

#![warn(missing_docs)]

// Failpoint shim: `crate::fail_point!` is the real injection macro when the
// `failpoints` feature is on and expands to nothing otherwise.
#[cfg(feature = "failpoints")]
pub(crate) use pbfs_fault::fail_point;
#[cfg(not(feature = "failpoints"))]
macro_rules! fail_point {
    ($($tt:tt)*) => {};
}
#[cfg(not(feature = "failpoints"))]
pub(crate) use fail_point;

pub mod instrument;
pub mod pool;
pub mod task;
pub mod topology;

pub use instrument::{RunStats, WorkerRun};
pub use pool::WorkerPool;
pub use task::{aligned_split, TaskQueues, DEFAULT_SPLIT_SIZE};
pub use topology::Topology;

/// Identifies a worker within a [`WorkerPool`]; worker 0 is the caller.
pub type WorkerId = usize;
