//! Persistent worker pool implementing the parallelized for loop
//! (Listing 7 of the paper).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};
use pbfs_telemetry::EventKind;

use crate::instrument::{Collector, Probe};
use crate::{RunStats, TaskQueues, Topology, WorkerId};

/// Type-erased job pointer published to the workers. The pool never returns
/// from a dispatch before every worker finished, so the erased lifetime is
/// sound (see [`WorkerPool::run_dyn`]).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(WorkerId) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared invocation is fine) and the pointer
// is only dereferenced while the original closure is kept alive by the
// dispatching call frame.
unsafe impl Send for Job {}

struct State {
    epoch: u64,
    job: Option<Job>,
    remaining: usize,
    shutdown: bool,
    /// Spawned workers whose loop body panicked during the current
    /// dispatch; read and reset by the dispatcher at the completion
    /// barrier so worker panics propagate instead of being swallowed.
    panicked: usize,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
}

thread_local! {
    /// Address of the pool (its `Shared` allocation) this thread is
    /// currently executing a loop body for; 0 when outside any pool.
    static DISPATCHING: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// A pool of persistent worker threads executing parallel loops over vertex
/// ranges with work stealing.
///
/// The calling thread participates as **worker 0**; `num_workers - 1`
/// threads are spawned. Dispatches are serialized: concurrent calls into the
/// same pool queue behind an internal lock.
///
/// The paper additionally pins each worker to a core (Section 4.4). Thread
/// pinning needs OS-specific syscalls outside the approved dependency set
/// and has no effect on a single-core container, so it is intentionally
/// omitted; the deterministic worker→node mapping it enables is modeled by
/// [`Topology`].
///
/// ```
/// use pbfs_sched::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.parallel_for(1000, 64, |_worker, range| {
///     sum.fetch_add(range.map(|i| i as u64).sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 999 * 1000 / 2);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    topology: Topology,
    dispatch_lock: Mutex<()>,
    poisoned: AtomicBool,
}

impl WorkerPool {
    /// Creates a single-NUMA-node pool with `num_workers` workers
    /// (including the calling thread).
    ///
    /// # Panics
    /// Panics if `num_workers == 0`.
    pub fn new(num_workers: usize) -> Self {
        Self::with_topology(Topology::single(num_workers))
    }

    /// Creates the pool serving one shard of a sharded engine: `workers`
    /// total workers are dealt over `shards` simulated sockets by the block
    /// rule of [`Topology::new`], and this pool gets `shard`'s share
    /// (clamped to ≥ 1 so every shard can make progress even when there are
    /// more shards than workers).
    ///
    /// Each shard's dispatcher thread should call this itself so the pool's
    /// worker threads — and the BFS state they first-touch — belong to that
    /// shard, mirroring the per-socket placement of Section 4.4.
    ///
    /// # Panics
    /// Panics if `shards == 0` or `shard >= shards`.
    pub fn for_shard(shards: usize, workers: usize, shard: usize) -> Self {
        let topo = Topology::new(shards, workers.max(1));
        assert!(shard < shards, "shard {shard} out of range for {shards}");
        Self::new(topo.workers_on(shard).len().max(1))
    }

    /// Creates a pool whose workers follow `topology`.
    pub fn with_topology(topology: Topology) -> Self {
        let num_workers = topology.num_workers();
        // Sizes dashboard rates (`pbfs top` divides per-worker counters by
        // this). Last-constructed pool wins, which matches the one-pool
        // lifecycle of the CLI and engine.
        pbfs_telemetry::registry()
            .gauge("pbfs_pool_workers", "Workers in the most recent pool")
            .set(num_workers as i64);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panicked: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..num_workers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pbfs-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id, 0))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            shared,
            handles,
            topology,
            dispatch_lock: Mutex::new(()),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of workers (including the calling thread).
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.topology.num_workers()
    }

    /// The pool's NUMA topology model.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Invokes `f(worker_id)` once on every worker and waits for all of
    /// them. The building block under every parallel loop.
    pub fn run(&self, f: impl Fn(WorkerId) + Sync) {
        self.run_dyn(&f);
    }

    fn run_dyn(&self, f: &(dyn Fn(WorkerId) + Sync)) {
        // Re-entrant dispatch of the *same* pool from inside a loop body
        // would deadlock on the dispatch lock (this is not a
        // nested-parallelism runtime like rayon — the paper's loops are
        // flat). Fail fast instead; dispatching a different pool is fine.
        struct Reset(usize);
        impl Drop for Reset {
            fn drop(&mut self) {
                DISPATCHING.with(|f| f.set(self.0));
            }
        }
        let me = Arc::as_ptr(&self.shared) as usize;
        let previous = DISPATCHING.with(|f| f.replace(me));
        assert!(
            previous != me,
            "re-entrant WorkerPool dispatch from inside its own parallel loop body"
        );
        let _reset = Reset(previous);

        let _guard = self.dispatch_lock.lock();
        assert!(
            !self.poisoned.load(Ordering::Relaxed),
            "worker pool poisoned by an earlier panic in a parallel loop"
        );
        // Before the job is published nothing is in flight, so an injected
        // panic here unwinds to the dispatching caller with the pool state
        // untouched (and unpoisoned).
        crate::fail_point!("sched.pool.dispatch");
        let spawned = self.handles.len();
        if spawned == 0 {
            f(0);
            return;
        }
        // SAFETY: erase the closure lifetime. The pointer is dereferenced
        // only by workers between the publish below and the completion wait,
        // and this frame (which borrows `f`) does not return before
        // `remaining` drops to zero.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(WorkerId) + Sync),
                *const (dyn Fn(WorkerId) + Sync + 'static),
            >(f as *const _)
        });
        {
            let mut st = self.shared.state.lock();
            st.epoch += 1;
            st.job = Some(job);
            st.remaining = spawned;
            self.shared.work_cv.notify_all();
        }
        // The caller participates as worker 0. If it panics we cannot
        // return while workers may still dereference the job, so wait for
        // them first and poison the pool on unwind.
        let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let worker_panics = {
            let mut st = self.shared.state.lock();
            while st.remaining > 0 {
                self.shared.done_cv.wait(&mut st);
            }
            st.job = None;
            std::mem::take(&mut st.panicked)
        };
        if let Err(panic) = caller_result {
            self.poisoned.store(true, Ordering::Relaxed);
            std::panic::resume_unwind(panic);
        }
        // A panic on a spawned worker must not silently yield a loop whose
        // range was only partially covered: surface it to the dispatching
        // caller exactly like a worker-0 panic would.
        if worker_panics > 0 {
            self.poisoned.store(true, Ordering::Relaxed);
            panic!("{worker_panics} pool worker(s) panicked inside a parallel loop");
        }
    }

    /// True once a panic in a parallel loop poisoned the pool. A poisoned
    /// pool refuses further dispatches until [`Self::recover`] is called.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Clears poisoning so the pool can be reused after a panic, respawning
    /// any worker thread that died. Returns `true` if the pool had been
    /// poisoned.
    ///
    /// Workers survive ordinary panics (loop bodies run under
    /// `catch_unwind`), so the respawn sweep is normally a no-op; it
    /// defends against exotic exits such as a panic payload whose `Drop`
    /// panics. Poisoning is therefore transient: callers that contain the
    /// propagated panic (e.g. the query engine's dispatcher) recover the
    /// pool and keep serving.
    pub fn recover(&mut self) -> bool {
        crate::fail_point!("sched.pool.respawn");
        let was_poisoned = self.poisoned.swap(false, Ordering::Relaxed);
        // Snapshot the epoch before spawning so a replacement worker never
        // mistakes the current (already finished) epoch for fresh work.
        let epoch = self.shared.state.lock().epoch;
        for (i, slot) in self.handles.iter_mut().enumerate() {
            if slot.is_finished() {
                let worker_id = i + 1; // handles[i] runs worker i+1
                let shared = Arc::clone(&self.shared);
                let fresh = std::thread::Builder::new()
                    .name(format!("pbfs-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id, epoch))
                    .expect("failed to respawn worker thread");
                let _ = std::mem::replace(slot, fresh).join();
            }
        }
        was_poisoned
    }

    /// The parallelized for loop of Listing 7: covers `0..total` in ranges
    /// of `split_size` items with per-worker queues and work stealing.
    pub fn parallel_for(
        &self,
        total: usize,
        split_size: usize,
        body: impl Fn(WorkerId, Range<usize>) + Sync,
    ) {
        let queues = TaskQueues::new(total, split_size, self.num_workers());
        // Sampled once per dispatch: while tracing is off the per-task cost
        // is one branch on a captured bool.
        let rec = pbfs_telemetry::recorder();
        let tracing = rec.is_enabled();
        self.run(|worker| {
            let my_node = self.topology.node_of_worker(worker);
            let (mut tasks, mut stolen, mut remote) = (0u64, 0u64, 0u64);
            let mut cursor = 0;
            while let Some((range, from)) = queues.fetch(worker, &mut cursor) {
                tasks += 1;
                let was_stolen = from != worker;
                if was_stolen {
                    stolen += 1;
                    if self.topology.node_of_worker(from) != my_node {
                        remote += 1;
                    }
                }
                if tracing {
                    let items = range.len() as u64;
                    if was_stolen {
                        rec.mark(worker, EventKind::Steal, from as u64, items);
                    }
                    let t0 = Instant::now();
                    body(worker, range);
                    rec.span_at(
                        worker,
                        EventKind::Task,
                        t0,
                        t0.elapsed(),
                        items,
                        was_stolen as u64,
                    );
                } else {
                    body(worker, range);
                }
            }
            crate::instrument::note_loop(worker, tasks, stolen, remote);
        });
    }

    /// Like [`Self::parallel_for`] but records per-worker busy time, task
    /// counts, steal counts and NUMA locality, and hands the body a
    /// [`Probe`] for algorithm-level work units.
    pub fn parallel_for_instrumented(
        &self,
        total: usize,
        split_size: usize,
        body: impl Fn(WorkerId, Range<usize>, &Probe) + Sync,
    ) -> RunStats {
        let queues = TaskQueues::new(total, split_size, self.num_workers());
        let collector = Collector::new(self.num_workers());
        let rec = pbfs_telemetry::recorder();
        let tracing = rec.is_enabled();
        let start = Instant::now();
        self.run(|worker| {
            let probe = Probe {
                collector: Some(&collector),
                worker,
            };
            let my_node = self.topology.node_of_worker(worker);
            let mut cursor = 0;
            let (mut busy, mut tasks, mut stolen, mut remote, mut items) =
                (0u64, 0u64, 0u64, 0u64, 0u64);
            while let Some((range, from)) = queues.fetch(worker, &mut cursor) {
                let t0 = Instant::now();
                let task_items = range.len() as u64;
                items += task_items;
                tasks += 1;
                let was_stolen = from != worker;
                if was_stolen {
                    stolen += 1;
                    if self.topology.node_of_worker(from) != my_node {
                        remote += 1;
                    }
                    if tracing {
                        rec.mark(worker, EventKind::Steal, from as u64, task_items);
                    }
                }
                body(worker, range, &probe);
                let dt = t0.elapsed();
                busy += dt.as_nanos() as u64;
                if tracing {
                    rec.span_at(
                        worker,
                        EventKind::Task,
                        t0,
                        dt,
                        task_items,
                        was_stolen as u64,
                    );
                }
            }
            collector.record(worker, busy, tasks, stolen, remote, items);
        });
        collector.finish(start.elapsed().as_nanos() as u64)
    }

    /// Static partitioning: worker `w` processes the `w`-th contiguous
    /// chunk of `0..total`, with no stealing. This is the baseline strategy
    /// that Figures 6 and 7 of the paper show to be badly skewed.
    pub fn parallel_for_static(&self, total: usize, body: impl Fn(WorkerId, Range<usize>) + Sync) {
        let n = self.num_workers();
        let chunk = total.div_ceil(n.max(1)).max(1);
        let rec = pbfs_telemetry::recorder();
        let tracing = rec.is_enabled();
        self.run(|worker| {
            let start = (worker * chunk).min(total);
            let end = ((worker + 1) * chunk).min(total);
            if start < end {
                if tracing {
                    let t0 = Instant::now();
                    body(worker, start..end);
                    rec.span_at(
                        worker,
                        EventKind::Task,
                        t0,
                        t0.elapsed(),
                        (end - start) as u64,
                        0,
                    );
                } else {
                    body(worker, start..end);
                }
                crate::instrument::note_loop(worker, 1, 0, 0);
            }
        });
    }

    /// Instrumented variant of [`Self::parallel_for_static`].
    pub fn parallel_for_static_instrumented(
        &self,
        total: usize,
        body: impl Fn(WorkerId, Range<usize>, &Probe) + Sync,
    ) -> RunStats {
        let n = self.num_workers();
        let chunk = total.div_ceil(n.max(1)).max(1);
        let collector = Collector::new(n);
        let rec = pbfs_telemetry::recorder();
        let tracing = rec.is_enabled();
        let start_wall = Instant::now();
        self.run(|worker| {
            let probe = Probe {
                collector: Some(&collector),
                worker,
            };
            let start = (worker * chunk).min(total);
            let end = ((worker + 1) * chunk).min(total);
            if start < end {
                let t0 = Instant::now();
                body(worker, start..end, &probe);
                let dt = t0.elapsed();
                if tracing {
                    rec.span_at(worker, EventKind::Task, t0, dt, (end - start) as u64, 0);
                }
                collector.record(worker, dt.as_nanos() as u64, 1, 0, 0, (end - start) as u64);
            }
        });
        collector.finish(start_wall.elapsed().as_nanos() as u64)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker_id: WorkerId, start_epoch: u64) {
    // This thread permanently belongs to one pool: mark it so loop bodies
    // that re-enter the pool fail fast instead of deadlocking.
    DISPATCHING.with(|f| f.set(shared as *const Shared as usize));
    let mut last_epoch = start_epoch;
    loop {
        let job = {
            let mut st = shared.state.lock();
            while !st.shutdown && st.epoch == last_epoch {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            last_epoch = st.epoch;
            st.job.expect("epoch advanced without a job")
        };
        // SAFETY: see `run_dyn` — the dispatcher keeps the closure alive
        // until `remaining` reaches zero, which happens below.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Inside the catch_unwind on purpose: an injected panic is then
            // counted in `st.panicked` like any loop-body panic instead of
            // killing the thread and deadlocking the epoch barrier.
            crate::fail_point!("sched.pool.worker");
            (unsafe { &*job.0 })(worker_id)
        }));
        // Telemetry before the barrier releases: anyone who observes the
        // re-raised panic (e.g. a test asserting on the counter after a
        // failed batch resolves) must also observe the count.
        if result.is_err() {
            crate::instrument::note_panic(worker_id, last_epoch);
        }
        {
            let mut st = shared.state.lock();
            st.remaining -= 1;
            if result.is_err() {
                // Recorded before the barrier releases so the dispatcher
                // observes it and re-raises; the worker itself stays alive
                // for the next epoch.
                st.panicked += 1;
            }
            if st.remaining == 0 {
                shared.done_cv.notify_one();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn for_shard_deals_workers_by_topology_blocks() {
        // 4 workers over 2 shards: 2 + 2.
        assert_eq!(WorkerPool::for_shard(2, 4, 0).num_workers(), 2);
        assert_eq!(WorkerPool::for_shard(2, 4, 1).num_workers(), 2);
        // 5 over 2: the first shard hosts the remainder.
        assert_eq!(WorkerPool::for_shard(2, 5, 0).num_workers(), 3);
        assert_eq!(WorkerPool::for_shard(2, 5, 1).num_workers(), 2);
        // More shards than workers: empty shares clamp to one worker so the
        // shard still makes progress.
        assert_eq!(WorkerPool::for_shard(4, 2, 3).num_workers(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn for_shard_rejects_out_of_range_shard() {
        let _ = WorkerPool::for_shard(2, 4, 2);
    }

    #[test]
    fn run_invokes_every_worker_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(|w| {
            hits[w].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let hit = AtomicUsize::new(0);
        pool.run(|w| {
            assert_eq!(w, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_for_covers_range_exactly_once() {
        let pool = WorkerPool::new(3);
        let total = 10_001;
        let counts: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(total, 128, |_, range| {
            for i in range {
                counts[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_range() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(0, 64, |_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn sequential_dispatches_reuse_workers() {
        let pool = WorkerPool::new(4);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.parallel_for(100, 16, |_, r| {
                sum.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn instrumented_records_items_and_tasks() {
        let pool = WorkerPool::new(2);
        let stats = pool.parallel_for_instrumented(1000, 100, |_, r, probe| {
            probe.add_work(r.len() as u64 * 2);
        });
        assert_eq!(stats.total_tasks(), 10);
        assert_eq!(stats.per_worker.iter().map(|w| w.items).sum::<u64>(), 1000);
        assert_eq!(stats.total_work(), 2000);
        assert!(stats.wall_ns > 0);
    }

    #[test]
    fn static_partitioning_gives_contiguous_chunks() {
        let pool = WorkerPool::new(4);
        let ranges = Mutex::new(Vec::new());
        pool.parallel_for_static(10, |w, r| {
            ranges.lock().push((w, r));
        });
        let mut got = ranges.into_inner();
        got.sort_by_key(|(w, r)| (*w, r.start));
        assert_eq!(got, vec![(0, 0..3), (1, 3..6), (2, 6..9), (3, 9..10)]);
    }

    #[test]
    fn static_instrumented_counts_one_task_per_worker() {
        let pool = WorkerPool::new(3);
        let stats = pool.parallel_for_static_instrumented(300, |_, r, p| {
            p.add_work(r.len() as u64);
        });
        assert_eq!(stats.total_tasks(), 3);
        assert_eq!(stats.total_stolen(), 0);
        assert_eq!(stats.total_work(), 300);
    }

    #[test]
    fn numa_remote_counting() {
        // 2 nodes × 2 workers; force imbalance so stealing crosses nodes.
        let pool = WorkerPool::with_topology(Topology::new(2, 4));
        // All the work is in the first task; workers 2,3 must steal
        // remotely or finish empty. We can't force stealing determinism,
        // but remote must never exceed stolen.
        let stats = pool.parallel_for_instrumented(4096, 64, |_, r, _| {
            std::hint::black_box(r.len());
        });
        assert!(stats.total_remote() <= stats.total_stolen());
    }

    #[test]
    fn caller_panic_propagates_and_poisons() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|_| {});
        }));
        assert!(second.is_err(), "pool must refuse to run after poisoning");
    }

    #[test]
    fn worker_panic_propagates_to_dispatching_caller() {
        let pool = WorkerPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(
            result.is_err(),
            "a spawned worker's panic must not be swallowed"
        );
        assert!(pool.is_poisoned());
    }

    #[test]
    fn recover_clears_poisoning_and_pool_runs_again() {
        let mut pool = WorkerPool::new(4);
        for round in 0..3 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|w| {
                    if w == round % 2 {
                        panic!("boom {round}");
                    }
                });
            }));
            assert!(result.is_err());
            assert!(pool.is_poisoned());
            assert!(pool.recover());
            assert!(!pool.is_poisoned());
            assert!(!pool.recover(), "recover on a healthy pool is a no-op");
            let sum = AtomicU64::new(0);
            pool.parallel_for(10_000, 128, |_, r| {
                sum.fetch_add(r.len() as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.into_inner(), 10_000);
        }
    }

    #[test]
    fn reentrant_dispatch_panics_instead_of_deadlocking() {
        // Single-worker pool: the caller thread itself executes the body,
        // so the re-entry is guaranteed to happen on a marked thread and
        // the panic propagates to us.
        let pool = WorkerPool::new(1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(4, 1, |_, _| {
                pool.parallel_for(2, 1, |_, _| {});
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn dispatching_a_different_pool_from_a_body_is_allowed() {
        let outer = WorkerPool::new(2);
        let inner = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let once = std::sync::atomic::AtomicBool::new(false);
        outer.parallel_for(2, 1, |w, _| {
            // Only the caller thread may dispatch (spawned workers of
            // `outer` would be marked for `outer`, which is fine, but the
            // latch keeps the accounting exact under task stealing).
            if w == 0 && !once.swap(true, Ordering::Relaxed) {
                inner.parallel_for(8, 2, |_, r| {
                    hits.fetch_add(r.len(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn oversubscribed_pool_on_one_core_still_completes() {
        let pool = WorkerPool::new(16);
        let sum = AtomicU64::new(0);
        pool.parallel_for(100_000, 256, |_, r| {
            sum.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100_000);
    }
}
