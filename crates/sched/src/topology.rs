//! Simulated NUMA topology (Section 4.4 of the paper).
//!
//! The paper evaluates on a 4-socket machine and pins workers to cores so
//! that BFS state pages, adjacency lists and task ranges stay NUMA-local.
//! This container has a single core, so instead of binding real pages we
//! *model* the topology: workers are assigned to nodes in contiguous blocks
//! (exactly like the paper's "cores 1–15 on socket one"), task ranges
//! inherit the node of their owning worker, and the pool counts local vs.
//! remote task executions. The code paths that decide placement are the
//! real ones; only the physical page binding is absent.

use std::fmt;

use crate::WorkerId;

/// A NUMA topology: `num_nodes` nodes hosting `num_workers` workers in
/// contiguous, maximally-even blocks.
#[derive(Clone, PartialEq, Eq)]
pub struct Topology {
    num_nodes: usize,
    num_workers: usize,
}

impl Topology {
    /// A single-node topology (no NUMA effects) with `num_workers` workers.
    pub fn single(num_workers: usize) -> Self {
        Self::new(1, num_workers)
    }

    /// A topology of `num_nodes` nodes sharing `num_workers` workers.
    /// Workers are laid out node-major: worker ids `0..w/n` on node 0, the
    /// next block on node 1, and so on (remainder workers go to the first
    /// nodes).
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_nodes: usize, num_workers: usize) -> Self {
        assert!(num_nodes > 0, "need at least one NUMA node");
        assert!(num_workers > 0, "need at least one worker");
        Self {
            num_nodes,
            num_workers,
        }
    }

    /// Number of NUMA nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of workers across all nodes.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Workers hosted by `node`.
    pub fn workers_on(&self, node: usize) -> std::ops::Range<WorkerId> {
        assert!(node < self.num_nodes);
        let base = self.num_workers / self.num_nodes;
        let rem = self.num_workers % self.num_nodes;
        let start = node * base + node.min(rem);
        let len = base + usize::from(node < rem);
        start..start + len
    }

    /// The node hosting `worker`.
    #[inline]
    pub fn node_of_worker(&self, worker: WorkerId) -> usize {
        debug_assert!(worker < self.num_workers);
        let base = self.num_workers / self.num_nodes;
        let rem = self.num_workers % self.num_nodes;
        // First `rem` nodes have `base + 1` workers.
        let big = (base + 1) * rem;
        if worker < big {
            worker / (base + 1)
        } else {
            rem + (worker - big) / base.max(1)
        }
    }

    /// Share of BFS-state memory that Section 4.4 places on `node`:
    /// proportional to the share of workers on that node.
    pub fn memory_share(&self, node: usize) -> f64 {
        self.workers_on(node).len() as f64 / self.num_workers as f64
    }
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology({} nodes × {} workers)",
            self.num_nodes, self.num_workers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node() {
        let t = Topology::single(8);
        assert_eq!(t.num_nodes(), 1);
        for w in 0..8 {
            assert_eq!(t.node_of_worker(w), 0);
        }
        assert_eq!(t.workers_on(0), 0..8);
        assert!((t.memory_share(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn even_split() {
        // The paper's machine: 4 sockets × 15 cores.
        let t = Topology::new(4, 60);
        assert_eq!(t.workers_on(0), 0..15);
        assert_eq!(t.workers_on(3), 45..60);
        assert_eq!(t.node_of_worker(0), 0);
        assert_eq!(t.node_of_worker(14), 0);
        assert_eq!(t.node_of_worker(15), 1);
        assert_eq!(t.node_of_worker(59), 3);
        assert!((t.memory_share(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uneven_split() {
        let t = Topology::new(3, 10);
        // 10 workers over 3 nodes: 4, 3, 3.
        assert_eq!(t.workers_on(0), 0..4);
        assert_eq!(t.workers_on(1), 4..7);
        assert_eq!(t.workers_on(2), 7..10);
        for node in 0..3 {
            for w in t.workers_on(node) {
                assert_eq!(t.node_of_worker(w), node, "worker {w}");
            }
        }
        assert!((t.memory_share(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn more_nodes_than_workers() {
        let t = Topology::new(4, 2);
        // Nodes 0 and 1 get one worker each; 2 and 3 are empty.
        assert_eq!(t.workers_on(0), 0..1);
        assert_eq!(t.workers_on(1), 1..2);
        assert_eq!(t.workers_on(2).len(), 0);
        assert_eq!(t.node_of_worker(0), 0);
        assert_eq!(t.node_of_worker(1), 1);
    }

    #[test]
    fn blocks_partition_workers() {
        for nodes in 1..6 {
            for workers in 1..20 {
                let t = Topology::new(nodes, workers);
                let mut seen = vec![false; workers];
                for node in 0..nodes {
                    for w in t.workers_on(node) {
                        assert!(!seen[w]);
                        seen[w] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "nodes={nodes} workers={workers}");
            }
        }
    }
}
