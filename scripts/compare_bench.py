#!/usr/bin/env python3
"""Bench-history regression tracker for the kernels benchmark.

Diffs a current ``kernels`` bench run against a committed baseline
(``BENCH_*.json``), printing a per-graph / per-algo / per-width delta
table. With ``--check`` it exits nonzero when any kernel regresses by
more than the threshold (default 10%).

Two robustness measures keep the gate meaningful on shared hardware:

* **Normalization.** When the two runs used different benchmark
  configurations (scale, workers, trials) — or when ``--normalize`` is
  passed — each row's ns/edge is divided by its own run's geometric
  mean before comparison. That cancels the run-wide machine-speed
  factor (containers and CI runners drift by tens of percent between
  runs) and compares each kernel's *relative* standing within its run:
  a kernel that slows down relative to its peers is flagged even when
  the whole run sped up or slowed down.

* **Joint median+min rule.** A row only counts as a regression when
  *both* its median and its minimum ns/edge exceed the threshold. A
  genuine regression shifts the entire trial distribution; transient
  scheduler noise usually inflates only some trials, moving the median
  but not the min (or vice versa).

The default 10% threshold suits a quiet machine doing a deliberate A/B
comparison. CI on shared runners should pass a threshold above its
measured run-to-run noise floor (see .github/workflows/ci.yml).

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--check]
                     [--threshold PCT] [--normalize]
"""

import argparse
import json
import math
import sys


def key(row):
    """Identity of a kernel row: what we join baseline and current on."""
    return (row["graph"], row["algo"], row["width"], row["mode"])


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("bench") != "kernels" or "kernels" not in doc:
        sys.exit(f"error: {path} is not a kernels bench document")
    return doc


def configs_match(a, b):
    """Same benchmark shape → absolute ns/edge is directly comparable."""
    ca, cb = a.get("config", {}), b.get("config", {})
    return all(ca.get(k) == cb.get(k) for k in ("scale", "workers", "trials"))


def geomean(values):
    vals = [v for v in values if v > 0]
    if not vals:
        return 1.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="committed baseline BENCH_*.json")
    ap.add_argument("current", help="freshly produced kernels bench JSON")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on any regression beyond the threshold")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression tolerance in percent (default 10)")
    ap.add_argument("--normalize", action="store_true",
                    help="normalize by each run's geomean ns/edge even when "
                         "configs match (cancels machine-speed drift)")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)
    base_rows = {key(r): r for r in base["kernels"]}
    cur_rows = {key(r): r for r in cur["kernels"]}

    normalize = args.normalize or not configs_match(base, cur)
    print(f"comparing {args.current} against {args.baseline}")
    if normalize:
        base_med = geomean(r["median_ns_per_edge"] for r in base["kernels"])
        cur_med = geomean(r["median_ns_per_edge"] for r in cur["kernels"])
        base_min = geomean(r["min_ns_per_edge"] for r in base["kernels"])
        cur_min = geomean(r["min_ns_per_edge"] for r in cur["kernels"])
        if not configs_match(base, cur):
            bc, cc = base.get("config", {}), cur.get("config", {})
            print(f"note: configs differ (baseline {bc} vs current {cc})")
        print(f"normalized comparison: run-wide geomean ns/edge factor "
              f"{cur_med / base_med:+.1%} (deltas below are relative "
              "standing within each run, not absolute time)")
    else:
        base_med = cur_med = base_min = cur_min = 1.0
        print("matching configs: direct ns/edge comparison")

    header = (f"{'graph':<15} {'algo':<9} {'width':>5} {'mode':<8} "
              f"{'base ns/e':>10} {'cur ns/e':>10} {'median':>8} {'min':>8}"
              "  verdict")
    print()
    print(header)
    print("-" * len(header))

    regressions = []
    improvements = 0
    for k in sorted(base_rows):
        graph, algo, width, mode = k
        b = base_rows[k]
        c = cur_rows.get(k)
        if c is None:
            print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} "
                  f"{b['median_ns_per_edge']:>10.3f} {'—':>10} {'—':>8} "
                  f"{'—':>8}  MISSING in current run")
            regressions.append(f"{graph}/{algo}/w{width}/{mode}: "
                               "missing from current run")
            continue
        d_med = ((c["median_ns_per_edge"] / cur_med)
                 / (b["median_ns_per_edge"] / base_med) - 1.0) * 100.0
        d_min = ((c["min_ns_per_edge"] / cur_min)
                 / (b["min_ns_per_edge"] / base_min) - 1.0) * 100.0
        # Joint rule: a real regression moves the whole distribution.
        joint = min(d_med, d_min)
        if joint > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.0f}%)"
            regressions.append(f"{graph}/{algo}/w{width}/{mode}: "
                               f"median {d_med:+.1f}%, min {d_min:+.1f}%")
        elif max(d_med, d_min) < -args.threshold:
            verdict = "improved"
            improvements += 1
        else:
            verdict = "ok"
        print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} "
              f"{b['median_ns_per_edge']:>10.3f} "
              f"{c['median_ns_per_edge']:>10.3f} {d_med:>+7.1f}% "
              f"{d_min:>+7.1f}%  {verdict}")

    new = sorted(set(cur_rows) - set(base_rows))
    for graph, algo, width, mode in new:
        c = cur_rows[(graph, algo, width, mode)]
        print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} {'—':>10} "
              f"{c['median_ns_per_edge']:>10.3f} {'—':>8} {'—':>8}  "
              "new (no baseline)")

    # Atomics are machine-sensitive microbenches: report, never gate.
    base_atomics = {r["kind"]: r["ns_per_op"] for r in base.get("atomics", [])}
    for r in cur.get("atomics", []):
        b = base_atomics.get(r["kind"])
        if b:
            print(f"{'atomics':<15} {r['kind']:<9} {'':>5} {'':<8} "
                  f"{b:>10.3f} {r['ns_per_op']:>10.3f} "
                  f"{(r['ns_per_op'] / b - 1) * 100:>+7.1f}% {'':>8}  "
                  "informational")

    print()
    print(f"{len(base_rows)} baseline kernels, {len(regressions)} "
          f"regression(s), {improvements} improvement(s), {len(new)} new")
    if regressions:
        for r in regressions:
            print(f"  regression: {r}")
        if args.check:
            sys.exit(1)
    elif args.check:
        print("check ok: no kernel regressed beyond the threshold")


if __name__ == "__main__":
    main()
