#!/usr/bin/env python3
"""Bench-history regression tracker for the kernels benchmark.

Diffs a current ``kernels`` bench run against a committed baseline
(``BENCH_*.json``), printing a per-graph / per-algo / per-width delta
table. With ``--check`` it exits nonzero when any kernel regresses by
more than the threshold (default 10%).

Two robustness measures keep the gate meaningful on shared hardware:

* **Normalization.** When the two runs used different benchmark
  configurations (scale, workers, trials) — or when ``--normalize`` is
  passed — each row's ns/edge is divided by its own run's geometric
  mean before comparison. That cancels the run-wide machine-speed
  factor (containers and CI runners drift by tens of percent between
  runs) and compares each kernel's *relative* standing within its run:
  a kernel that slows down relative to its peers is flagged even when
  the whole run sped up or slowed down.

* **Joint median+min rule.** A row only counts as a regression when
  *both* its median and its minimum ns/edge exceed the threshold. A
  genuine regression shifts the entire trial distribution; transient
  scheduler noise usually inflates only some trials, moving the median
  but not the min (or vice versa).

The default 10% threshold suits a quiet machine doing a deliberate A/B
comparison. CI on shared runners should pass a threshold above its
measured run-to-run noise floor (see .github/workflows/ci.yml).

Rows are keyed on (graph, algo, width, mode, simd), so the kernels
bench's scalar-forced comparison rows form their own series and never
join against native-level rows. Runs whose configs record *different*
SIMD dispatch levels are refused outright unless --allow-isa-mismatch
is passed (the comparison is then normalized): absolute ns/edge across
ISAs measures the vector kernels, not a code regression.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--check]
                     [--threshold PCT] [--normalize]
                     [--allow-isa-mismatch]
    compare_bench.py --self-test
"""

import argparse
import json
import math
import sys


def key(row):
    """Identity of a kernel row: what we join baseline and current on.

    ``simd`` defaults to "auto" for documents predating the dispatch-level
    axis, so old baselines keep joining against new runs.
    """
    return (row["graph"], row["algo"], row["width"], row["mode"],
            row.get("simd", "auto"))


def metric(row, field, path):
    """A row's timing metric, validated.

    The normalized comparison divides by these values, so a missing,
    non-numeric, zero or negative metric would crash mid-table with a
    bare ZeroDivisionError/KeyError. Exit with a message naming the
    offending row instead.
    """
    v = row.get(field)
    if isinstance(v, bool) or not isinstance(v, (int, float)) \
            or math.isnan(v) or v <= 0:
        sys.exit(f"error: {path}: row {row.get('graph')}/{row.get('algo')}"
                 f"/w{row.get('width')}/{row.get('mode')}: {field} is {v!r}; "
                 "need a positive number (truncated or corrupt bench run?)")
    return float(v)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    validate(doc, path)
    return doc


def validate(doc, path):
    if doc.get("bench") != "kernels" or "kernels" not in doc:
        sys.exit(f"error: {path} is not a kernels bench document")
    if not doc["kernels"]:
        sys.exit(f"error: {path} has no kernel rows (empty bench run?)")
    # Validate every metric up front: a corrupt row should be a named
    # error before any table output, not a traceback halfway through.
    for r in doc["kernels"]:
        for field in ("median_ns_per_edge", "min_ns_per_edge"):
            metric(r, field, path)


def configs_match(a, b):
    """Same benchmark shape → absolute ns/edge is directly comparable."""
    ca, cb = a.get("config", {}), b.get("config", {})
    return all(
        ca.get(k) == cb.get(k)
        for k in ("scale", "workers", "trials", "simd")
    )


def check_isa(base, cur, args, base_name, cur_name):
    """Refuses a cross-ISA comparison unless explicitly allowed.

    A run at avx512 vs a run at scalar is an apples-to-oranges diff:
    every delta would mostly measure the vector kernels, not a code
    regression. Both configs must record the same dispatch level, or
    the caller must pass --allow-isa-mismatch (the comparison is then
    normalized, so only relative standing within each run is judged).
    Documents predating the ``simd`` config field are left alone.
    """
    sa = base.get("config", {}).get("simd")
    sb = cur.get("config", {}).get("simd")
    if sa is None or sb is None or sa == sb:
        return False
    if not getattr(args, "allow_isa_mismatch", False):
        sys.exit(f"error: SIMD dispatch levels differ ({base_name} ran at "
                 f"{sa!r}, {cur_name} at {sb!r}); absolute ns/edge is not "
                 "comparable across ISAs — rerun at a matching --simd "
                 "level, or pass --allow-isa-mismatch for a normalized "
                 "relative comparison")
    return True


def geomean(values):
    vals = [v for v in values if v > 0]
    if not vals:
        return 1.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def compare_runs(base, cur, args, base_name="baseline", cur_name="current"):
    """Prints the delta table; returns the list of regression strings."""
    cross_isa = check_isa(base, cur, args, base_name, cur_name)
    if cross_isa:
        # Allowed cross-ISA diff: the per-row simd labels differ by
        # construction, so join on (graph, algo, width, mode) alone and
        # show "*" in the simd column.
        def keyfn(r):
            return key(r)[:4] + ("*",)
    else:
        keyfn = key
    base_rows = {keyfn(r): r for r in base["kernels"]}
    cur_rows = {keyfn(r): r for r in cur["kernels"]}

    normalize = args.normalize or not configs_match(base, cur)
    print(f"comparing {cur_name} against {base_name}")
    if normalize:
        base_med = geomean(r["median_ns_per_edge"] for r in base["kernels"])
        cur_med = geomean(r["median_ns_per_edge"] for r in cur["kernels"])
        base_min = geomean(r["min_ns_per_edge"] for r in base["kernels"])
        cur_min = geomean(r["min_ns_per_edge"] for r in cur["kernels"])
        if not configs_match(base, cur):
            bc, cc = base.get("config", {}), cur.get("config", {})
            print(f"note: configs differ (baseline {bc} vs current {cc})")
        print(f"normalized comparison: run-wide geomean ns/edge factor "
              f"{cur_med / base_med:+.1%} (deltas below are relative "
              "standing within each run, not absolute time)")
    else:
        base_med = cur_med = base_min = cur_min = 1.0
        print("matching configs: direct ns/edge comparison")

    header = (f"{'graph':<15} {'algo':<9} {'width':>5} {'mode':<8} "
              f"{'simd':<7} "
              f"{'base ns/e':>10} {'cur ns/e':>10} {'median':>8} {'min':>8}"
              "  verdict")
    print()
    print(header)
    print("-" * len(header))

    regressions = []
    improvements = 0
    for k in sorted(base_rows):
        graph, algo, width, mode, simd = k
        b = base_rows[k]
        c = cur_rows.get(k)
        if c is None:
            print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} {simd:<7} "
                  f"{b['median_ns_per_edge']:>10.3f} {'—':>10} {'—':>8} "
                  f"{'—':>8}  MISSING in current run")
            regressions.append(f"{graph}/{algo}/w{width}/{mode}/{simd}: "
                               "missing from current run")
            continue
        d_med = ((metric(c, "median_ns_per_edge", cur_name) / cur_med)
                 / (metric(b, "median_ns_per_edge", base_name) / base_med)
                 - 1.0) * 100.0
        d_min = ((metric(c, "min_ns_per_edge", cur_name) / cur_min)
                 / (metric(b, "min_ns_per_edge", base_name) / base_min)
                 - 1.0) * 100.0
        # Joint rule: a real regression moves the whole distribution.
        joint = min(d_med, d_min)
        if joint > args.threshold:
            verdict = f"REGRESSION (> {args.threshold:.0f}%)"
            regressions.append(f"{graph}/{algo}/w{width}/{mode}/{simd}: "
                               f"median {d_med:+.1f}%, min {d_min:+.1f}%")
        elif max(d_med, d_min) < -args.threshold:
            verdict = "improved"
            improvements += 1
        else:
            verdict = "ok"
        print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} {simd:<7} "
              f"{b['median_ns_per_edge']:>10.3f} "
              f"{c['median_ns_per_edge']:>10.3f} {d_med:>+7.1f}% "
              f"{d_min:>+7.1f}%  {verdict}")

    new = sorted(set(cur_rows) - set(base_rows))
    for k in new:
        graph, algo, width, mode, simd = k
        c = cur_rows[k]
        print(f"{graph:<15} {algo:<9} {width:>5} {mode:<8} {simd:<7} "
              f"{'—':>10} "
              f"{c['median_ns_per_edge']:>10.3f} {'—':>8} {'—':>8}  "
              "new (no baseline)")

    # Atomics are machine-sensitive microbenches: report, never gate.
    base_atomics = {r["kind"]: r["ns_per_op"] for r in base.get("atomics", [])}
    for r in cur.get("atomics", []):
        b = base_atomics.get(r["kind"])
        if b:
            print(f"{'atomics':<15} {r['kind']:<9} {'':>5} {'':<8} {'':<7} "
                  f"{b:>10.3f} {r['ns_per_op']:>10.3f} "
                  f"{(r['ns_per_op'] / b - 1) * 100:>+7.1f}% {'':>8}  "
                  "informational")

    print()
    print(f"{len(base_rows)} baseline kernels, {len(regressions)} "
          f"regression(s), {improvements} improvement(s), {len(new)} new")
    for r in regressions:
        print(f"  regression: {r}")
    return regressions


def make_doc(medians, factor=1.0, config=None, simd="auto"):
    """Synthetic kernels document for the self-test. ``medians`` maps a
    row key tuple (with or without a trailing simd component) to its
    median ns/edge; min is 90% of median; ``factor`` scales everything
    (simulated machine-speed drift); ``simd`` labels rows lacking one."""
    rows = []
    for k, v in medians.items():
        g, a, w, m = k[:4]
        rows.append({"graph": g, "algo": a, "width": w, "mode": m,
                     "simd": k[4] if len(k) > 4 else simd,
                     "median_ns_per_edge": v * factor,
                     "min_ns_per_edge": v * factor * 0.9})
    return {
        "bench": "kernels",
        "config": config or {"scale": 8, "workers": 2, "trials": 3,
                             "simd": simd},
        "kernels": rows,
        "atomics": [],
    }


def expect_exit(fn, needle):
    """Runs ``fn``, asserting it exits cleanly with ``needle`` in the
    message — never a bare ZeroDivisionError/KeyError traceback."""
    try:
        fn()
    except SystemExit as e:
        msg = str(e.code)
        assert needle in msg, f"exit message {msg!r} lacks {needle!r}"
        return
    raise AssertionError(f"expected a clean exit mentioning {needle!r}")


def self_test():
    """Exercises the comparison and its guard rails on synthetic docs."""
    args = argparse.Namespace(threshold=10.0, normalize=False, check=False,
                              allow_isa_mismatch=False)
    rows = {("kron", "ms", 64, "flat"): 2.0, ("kron", "sms", 1, "flat"): 4.0}

    # Identical runs: clean table, no regressions.
    assert compare_runs(make_doc(rows), make_doc(rows), args) == []

    # A genuine regression (median and min both move) is flagged.
    slow = dict(rows)
    slow[("kron", "ms", 64, "flat")] = 3.0
    bad = compare_runs(make_doc(rows), make_doc(slow), args)
    assert len(bad) == 1 and "kron/ms/w64/flat" in bad[0], bad

    # Uniform 2x machine drift under --normalize: no false regression.
    norm = argparse.Namespace(threshold=10.0, normalize=True, check=False,
                              allow_isa_mismatch=False)
    assert compare_runs(make_doc(rows), make_doc(rows, factor=2.0),
                        norm) == []

    # Runs at different dispatch levels are refused by default: the
    # absolute delta would measure the vector kernels, not a regression.
    expect_exit(
        lambda: compare_runs(make_doc(rows, simd="avx2"),
                             make_doc(rows, factor=0.5, simd="scalar"),
                             args, "avx.json", "scalar.json"),
        "--allow-isa-mismatch")

    # --allow-isa-mismatch permits the comparison (normalized, since the
    # configs differ on simd).
    allow = argparse.Namespace(threshold=10.0, normalize=False, check=False,
                               allow_isa_mismatch=True)
    assert compare_runs(make_doc(rows, simd="avx2"),
                        make_doc(rows, factor=0.5, simd="scalar"),
                        allow) == []

    # Rows carrying distinct simd labels within one run are distinct
    # series: a scalar-forced comparison row never joins against (or
    # shadows) the native-level row with the same graph/algo/width/mode.
    both = dict(rows)
    both[("kron", "ms", 64, "flat", "scalar")] = 6.0
    assert compare_runs(make_doc(rows, simd="avx2"),
                        make_doc(both, simd="avx2"), args) == []

    # A zero baseline median must exit with a named row, not divide by
    # zero mid-table.
    zeroed = make_doc(rows)
    zeroed["kernels"][0]["median_ns_per_edge"] = 0.0
    expect_exit(lambda: validate(zeroed, "zeroed.json"), "median_ns_per_edge")
    expect_exit(
        lambda: compare_runs(zeroed, make_doc(rows), norm,
                             base_name="zeroed.json"),
        "median_ns_per_edge")

    # A missing min metric is a named error, not a KeyError.
    missing = make_doc(rows)
    del missing["kernels"][1]["min_ns_per_edge"]
    expect_exit(lambda: validate(missing, "missing.json"), "min_ns_per_edge")

    # An empty document is rejected up front.
    expect_exit(lambda: validate({"bench": "kernels", "kernels": []},
                                 "empty.json"), "no kernel rows")
    expect_exit(lambda: validate({"bench": "other"}, "other.json"),
                "not a kernels bench document")

    print("self-test ok: 10 scenarios passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?",
                    help="committed baseline BENCH_*.json")
    ap.add_argument("current", nargs="?",
                    help="freshly produced kernels bench JSON")
    ap.add_argument("--check", action="store_true",
                    help="exit 1 on any regression beyond the threshold")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression tolerance in percent (default 10)")
    ap.add_argument("--normalize", action="store_true",
                    help="normalize by each run's geomean ns/edge even when "
                         "configs match (cancels machine-speed drift)")
    ap.add_argument("--allow-isa-mismatch", action="store_true",
                    help="permit comparing runs recorded at different SIMD "
                         "dispatch levels (comparison is normalized; deltas "
                         "are relative standing, not absolute time)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in scenario checks and exit")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.current:
        ap.error("baseline and current are required (or pass --self-test)")

    base = load(args.baseline)
    cur = load(args.current)
    regressions = compare_runs(base, cur, args,
                               base_name=args.baseline,
                               cur_name=args.current)
    if regressions:
        if args.check:
            sys.exit(1)
    elif args.check:
        print("check ok: no kernel regressed beyond the threshold")


if __name__ == "__main__":
    main()
