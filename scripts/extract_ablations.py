#!/usr/bin/env python3
"""Extracts ablation medians from a criterion `cargo bench` log.

Usage: python3 scripts/extract_ablations.py bench_output.txt
Prints a markdown table of benchmark medians for EXPERIMENTS.md.
"""
import re
import sys


def main(path: str) -> None:
    name = None
    rows = []
    pat_time = re.compile(r"time:\s+\[\S+ \S+ (\S+) (\S+) \S+ \S+\]")
    for line in open(path):
        line = line.rstrip()
        m = pat_time.search(line)
        if m and name:
            rows.append((name, f"{m.group(1)} {m.group(2)}"))
            name = None
            continue
        # A benchmark id line either precedes `time:` on its own line or
        # carries the time inline.
        inline = re.match(r"^(\S+)\s+time:\s+\[\S+ \S+ (\S+) (\S+)\]", line)
        if inline:
            rows.append((inline.group(1), f"{inline.group(2)} {inline.group(3)}"))
            name = None
            continue
        if line and not line.startswith(("Benchmarking", "Found", "  ", "warning", "error",
                                         "   Compiling", "    Finished", "     Running",
                                         "Gnuplot")):
            name = line.strip()
    print("| benchmark | median |")
    print("|---|---|")
    for n, t in rows:
        print(f"| `{n}` | {t} |")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
