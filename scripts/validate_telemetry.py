#!/usr/bin/env python3
"""Validate the pbfs telemetry export formats.

Usage:
    validate_telemetry.py chrome <trace.json>
    validate_telemetry.py prometheus <metrics.txt> [--failpoints]
        [--require-nonzero FAMILY]...

``chrome`` checks that the file is a Chrome-trace JSON object whose
``traceEvents`` hold well-formed duration ("X"), instant ("i") and
metadata ("M") records covering the span kinds the tracer is expected to
emit during a query replay.  ``prometheus`` checks text exposition
format 0.0.4: HELP/TYPE headers, sample lines that match their family,
histogram bucket/sum/count shape, and the metric families every layer
registers — including the per-shard engine counters
(``pbfs_engine_shard_*_total``), whose every sample must carry a
``shard="..."`` label.  ``--require-nonzero`` (repeatable) additionally demands that
at least one sample of the named family has a value > 0 — used by the
fault-injection smoke to prove rejections actually happened.
``--failpoints`` declares that the export came from a build with live
failpoint sites: the ``pbfs_fault_triggered_total`` /
``pbfs_fault_skipped_total`` families become required, and every sample
must carry a ``site="..."`` label.  Exit status 0 on success; prints the
failure and exits 1 otherwise.
"""

import json
import re
import sys

REQUIRED_CHROME_EVENTS = {
    "task": "X",
    "iteration": "X",
    # batch_submit is a span (submit → coalesce), emitted by the
    # dispatcher once the covering batch's query-set id is known.
    "batch_submit": "X",
    "batch_coalesce": "X",
    "batch_flush": "X",
    "batch_complete": "i",
}

REQUIRED_PROM_FAMILIES = [
    "pbfs_sched_tasks_total",
    "pbfs_sched_steals_total",
    "pbfs_bfs_iterations_total",
    "pbfs_bfs_traversals_total",
    "pbfs_bfs_discovered_states_total",
    "pbfs_engine_queries_total",
    "pbfs_engine_batches_total",
    "pbfs_engine_queue_depth",
    "pbfs_engine_in_flight_queries",
    "pbfs_engine_batch_width",
    "pbfs_engine_query_latency_ns",
    "pbfs_engine_rejected_total",
    "pbfs_engine_expired_total",
    "pbfs_engine_failed_queries_total",
    "pbfs_sched_worker_panics_total",
    "pbfs_adapt_samples_total",
    "pbfs_adapt_switches_total",
    "pbfs_adapt_retunes_total",
    "pbfs_telemetry_dropped_events_total",
    "pbfs_trace_dropped_events_total",
    "pbfs_build_info",
    "pbfs_graph_vertices",
    "pbfs_graph_edges",
    # Versioned storage: the engine always rides a GraphStore (a static
    # graph is just a store that never leaves its first epoch), so these
    # register in every engine-driven export. The live-epochs gauge is the
    # reclamation leak detector — chaos asserts it returns to baseline.
    "pbfs_storage_mutations_total",
    "pbfs_storage_compactions_total",
    "pbfs_storage_epochs_total",
    "pbfs_storage_epochs_live",
]

# Per-shard engine counters. Shard 0's family is registered by every
# engine (unsharded engines are one-shard engines), so these are always
# required, and every sample must carry its shard label — an unlabeled
# sample would silently aggregate the shards a scrape is supposed to
# tell apart.
SHARD_PROM_FAMILIES = [
    "pbfs_engine_shard_queries_total",
    "pbfs_engine_shard_batches_total",
    "pbfs_engine_shard_failed_total",
]

# Additionally required when the export came from a failpoints build
# (--failpoints); every sample must be labeled with its site.
FAILPOINT_PROM_FAMILIES = [
    "pbfs_fault_triggered_total",
    "pbfs_fault_skipped_total",
]


def fail(msg):
    print(f"validate_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_chrome(path):
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    seen = {}
    for e in events:
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(f"event missing {key!r}: {e}")
        ph = e["ph"]
        if ph == "X":
            if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
                fail(f"duration event with bad ts: {e}")
            if not isinstance(e.get("dur"), (int, float)) or e["dur"] < 0:
                fail(f"duration event with bad dur: {e}")
        elif ph == "i":
            if not isinstance(e.get("ts"), (int, float)) or e["ts"] < 0:
                fail(f"instant event with bad ts: {e}")
            if e.get("s") not in ("t", "p", "g"):
                fail(f"instant event with bad scope: {e}")
        elif ph == "M":
            if "args" not in e:
                fail(f"metadata event without args: {e}")
        else:
            fail(f"unknown phase {ph!r}: {e}")
        seen.setdefault(e["name"], e["ph"])

    for name, ph in REQUIRED_CHROME_EVENTS.items():
        if name not in seen:
            fail(f"no {name!r} event in trace")
        if seen[name] != ph:
            fail(f"{name!r} has phase {seen[name]!r}, expected {ph!r}")
    for meta in ("process_name", "thread_name"):
        if seen.get(meta) != "M":
            fail(f"missing {meta!r} metadata record")

    n = len(events)
    print(f"validate_telemetry: chrome trace OK ({n} events, {len(seen)} kinds)")


# Histogram bucket lines may carry an OpenMetrics-style exemplar suffix:
#   ..._bucket{le="1024"} 3 # {query="17",trace_ref="2"} 1
SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)"
    r"(?P<exemplar> # \{[^}]*\} \S+)?$"
)


def validate_prometheus(path, require_nonzero=(), failpoints=False):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        fail("empty metrics file")

    types = {}  # family -> TYPE
    helped = set()
    samples = {}  # family -> list of (labels, sample name)
    totals = {}  # family -> sum of sample values
    for line in lines:
        if not line:
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"bad TYPE line: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"malformed sample line: {line!r}")
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(f"non-numeric sample value: {line!r}")
        name = m.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        family = family if family in types else name
        if family not in types:
            fail(f"sample {name!r} has no TYPE header")
        samples.setdefault(family, []).append((m.group("labels") or "", name))
        totals[family] = totals.get(family, 0.0) + value

    for family, typ in types.items():
        if family not in helped:
            fail(f"family {family!r} has TYPE but no HELP")
        if family not in samples:
            fail(f"family {family!r} has headers but no samples")
        if typ == "histogram":
            names = {n for _, n in samples[family]}
            for suffix in ("_bucket", "_sum", "_count"):
                if family + suffix not in names:
                    fail(f"histogram {family!r} missing {family + suffix!r}")
            if not any('le="+Inf"' in lbl for lbl, n in samples[family]
                       if n == family + "_bucket"):
                fail(f"histogram {family!r} has no +Inf bucket")

    for family in REQUIRED_PROM_FAMILIES:
        if family not in types:
            fail(f"required family {family!r} absent")
    # The build-info sample must say which SIMD dispatch level produced
    # the run: bench/telemetry numbers are not comparable across ISAs, so
    # an export that lost the label would silently mix them.
    for labels, _ in samples.get("pbfs_build_info", []):
        if 'simd="' not in labels:
            fail(f"pbfs_build_info sample without a simd label: {labels!r}")
    for family in SHARD_PROM_FAMILIES:
        if family not in types:
            fail(f"required family {family!r} absent")
        if types[family] != "counter":
            fail(f"{family!r} must be a counter, is {types[family]!r}")
        for labels, _ in samples[family]:
            if 'shard="' not in labels:
                fail(f"{family!r} sample without a shard label: {labels!r}")
    if failpoints:
        for family in FAILPOINT_PROM_FAMILIES:
            if family not in types:
                fail(f"--failpoints requires family {family!r}")
            if types[family] != "counter":
                fail(f"{family!r} must be a counter, is {types[family]!r}")
            for labels, _ in samples[family]:
                if 'site="' not in labels:
                    fail(f"{family!r} sample without a site label: {labels!r}")
    for family in require_nonzero:
        if family not in types:
            fail(f"--require-nonzero family {family!r} absent")
        if totals.get(family, 0.0) <= 0:
            fail(f"family {family!r} required nonzero but all samples are 0")
    directions = {lbl for lbl, _ in samples.get("pbfs_bfs_iterations_total", [])}
    for want in ('direction="top_down"', 'direction="bottom_up"'):
        if not any(want in lbl for lbl in directions):
            fail(f"pbfs_bfs_iterations_total missing {want} sample")

    print(f"validate_telemetry: prometheus text OK ({len(types)} families)")


def main():
    argv = sys.argv[1:]
    if len(argv) < 2 or argv[0] not in ("chrome", "prometheus"):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    mode, path, rest = argv[0], argv[1], argv[2:]
    require_nonzero = []
    failpoints = False
    while rest:
        if rest[0] == "--failpoints":
            failpoints = True
            rest = rest[1:]
        elif rest[0] == "--require-nonzero" and len(rest) >= 2:
            require_nonzero.append(rest[1])
            rest = rest[2:]
        else:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
    if mode == "chrome":
        if require_nonzero or failpoints:
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        validate_chrome(path)
    else:
        validate_prometheus(path, require_nonzero, failpoints)


if __name__ == "__main__":
    main()
