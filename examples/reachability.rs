//! Reachability and k-hop neighborhood queries on a web-crawl-like graph,
//! plus effective-diameter estimation via the neighborhood function —
//! three of the BFS-based primitives listed in the paper's introduction.
//!
//! ```sh
//! cargo run --release --example reachability
//! ```

use pbfs::core::analytics::{k_hop_neighborhood, neighborhood_function, reachable_from};
use pbfs::core::prelude::*;
use pbfs::graph::gen;
use pbfs::graph::stats::ComponentInfo;
use pbfs::sched::WorkerPool;

fn main() {
    // A uk-2005-like web graph: host blocks, local links, portal hubs.
    let g = gen::web_graph(30_000, 14, 11);
    println!(
        "web graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let pool = WorkerPool::new(4);
    let opts = BfsOptions::default();
    let comps = ComponentInfo::compute(&g);
    let start = comps.vertex_in_largest().expect("non-empty graph");

    // Reachability: which pages can a crawler starting at `start` reach?
    let mask = reachable_from(&g, &pool, start, &opts);
    let reached = mask.iter().filter(|&&b| b).count();
    println!(
        "crawler from {start}: {reached} of {} pages reachable ({:.1}%)",
        g.num_vertices(),
        100.0 * reached as f64 / g.num_vertices() as f64
    );

    // k-hop neighborhoods: the "friends of friends" primitive.
    for k in 1..=4 {
        let hood = k_hop_neighborhood(&g, &pool, start, k, &opts);
        println!("  within {k} hops: {} pages", hood.len());
    }

    // Effective diameter from a 64-source exact neighborhood function —
    // one MS-PBFS batch.
    let sources: Vec<u32> = (0..64u32)
        .map(|i| (i * (g.num_vertices() as u32 / 64)).min(g.num_vertices() as u32 - 1))
        .collect();
    let nf = neighborhood_function::<1>(&g, &pool, &sources, 64, &opts);
    println!(
        "effective diameter (q=0.9, 64 sources): {:.1} hops",
        nf.effective_diameter(0.9)
    );
}
