//! Quickstart: generate a Graph500 Kronecker graph, run the parallel
//! single-source BFS (SMS-PBFS), and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pbfs::core::prelude::*;
use pbfs::graph::{gen, stats::GraphStats};
use pbfs::sched::WorkerPool;

fn main() {
    // A scale-16 Kronecker graph with Graph500 parameters: 65k vertices,
    // ~1M generated edges.
    let g = gen::Kronecker::graph500(16).seed(42).generate();
    let stats = GraphStats::compute(&g);
    println!(
        "graph: {} vertices ({} connected), {} edges, max degree {}",
        stats.num_vertices, stats.num_connected_vertices, stats.num_edges, stats.max_degree
    );

    // A worker pool sized to the machine (the algorithms are oblivious to
    // the actual core count; oversubscription is fine).
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let pool = WorkerPool::new(workers);

    // Run SMS-PBFS (bit representation) from vertex 0, recording both
    // distances and the BFS tree.
    let source = 0;
    let distances = DistanceVisitor::new(g.num_vertices());
    let parents = ParentVisitor::new(g.num_vertices(), source);
    let both = pbfs::core::visitor::PairVisitor(&distances, &parents);
    let mut bfs = SmsPbfsBit::new(g.num_vertices());
    let stats = bfs.run(&g, &pool, source, &BfsOptions::default(), &both);

    println!(
        "BFS from {source}: {} vertices reached in {} iterations ({} bottom-up), {:.2} ms",
        stats.total_discovered,
        stats.num_iterations(),
        stats.bottom_up_iterations(),
        stats.total_wall_ns as f64 / 1e6,
    );

    // Distance histogram — small-world graphs collapse within a few hops.
    let d = distances.distances();
    let max = d
        .iter()
        .filter(|&&x| x != UNREACHED)
        .max()
        .copied()
        .unwrap_or(0);
    for level in 0..=max {
        let count = d.iter().filter(|&&x| x == level).count();
        println!("  distance {level}: {count} vertices");
    }

    // Validate the tree Graph500-style.
    pbfs::core::validate::validate_tree(&g, source, &parents.parents(), &d)
        .expect("BFS tree validates");
    println!("BFS tree validated (Graph500 rules)");
}
