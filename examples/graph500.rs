//! A Graph500-style benchmark run: generate the Kronecker graph, traverse
//! 64 random sources, validate every BFS tree, and report GTEPS — the
//! protocol behind the paper's evaluation (Section 5).
//!
//! ```sh
//! cargo run --release --example graph500 -- [scale]
//! ```

use pbfs::core::batch::{gteps, total_traversed_edges};
use pbfs::core::prelude::*;
use pbfs::core::validate::validate_tree;
use pbfs::graph::gen;
use pbfs::graph::labeling::LabelingScheme;
use pbfs::graph::stats::ComponentInfo;
use pbfs::sched::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Kernel 1: construction.
    let t0 = std::time::Instant::now();
    let raw = gen::Kronecker::graph500(scale).seed(1).generate();
    // Apply the paper's striped labeling, co-designed with the scheduler.
    let g = LabelingScheme::Striped {
        workers,
        task_size: 256,
    }
    .apply(&raw);
    println!(
        "kernel 1: scale {scale}, {} vertices, {} edges, built in {:.2}s",
        g.num_vertices(),
        g.num_edges(),
        t0.elapsed().as_secs_f64()
    );

    // 64 random sources with at least one neighbor.
    let comps = ComponentInfo::compute(&g);
    let mut rng = StdRng::seed_from_u64(2);
    let mut sources = Vec::new();
    while sources.len() < 64 {
        let v = rng.random_range(0..g.num_vertices() as u32);
        if g.degree(v) > 0 {
            sources.push(v);
        }
    }

    // Kernel 2 (multi-source flavour): one MS-PBFS batch answers all 64.
    let pool = WorkerPool::new(workers);
    let opts = BfsOptions::default();
    let mut ms: pbfs::core::mspbfs::MsPbfs<1> = pbfs::core::mspbfs::MsPbfs::new(g.num_vertices());
    let t0 = std::time::Instant::now();
    let stats = ms.run(&g, &pool, &sources, &opts, &NoopMsVisitor);
    let ms_ns = t0.elapsed().as_nanos() as u64;
    let edges = total_traversed_edges(&comps, &sources);
    println!(
        "MS-PBFS: 64 sources in {:.1} ms → {:.3} GTEPS ({} iterations)",
        ms_ns as f64 / 1e6,
        gteps(edges, ms_ns),
        stats.num_iterations(),
    );

    // Kernel 2 (single-source flavour) + Graph500 validation of each tree.
    let mut ss = SmsPbfsBit::new(g.num_vertices());
    let t0 = std::time::Instant::now();
    for &s in sources.iter().take(8) {
        let dist = DistanceVisitor::new(g.num_vertices());
        let parent = ParentVisitor::new(g.num_vertices(), s);
        let both = pbfs::core::visitor::PairVisitor(&dist, &parent);
        ss.run(&g, &pool, s, &opts, &both);
        validate_tree(&g, s, &parent.parents(), &dist.distances())
            .unwrap_or_else(|e| panic!("validation failed for source {s}: {e}"));
    }
    let ss_ns = t0.elapsed().as_nanos() as u64;
    let edges8 = total_traversed_edges(&comps, &sources[..8]);
    println!(
        "SMS-PBFS: 8 validated sources in {:.1} ms → {:.3} GTEPS",
        ss_ns as f64 / 1e6,
        gteps(edges8, ss_ns),
    );
    println!("all BFS trees validated");
}
