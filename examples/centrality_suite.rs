//! The full centrality toolbox on one social network: closeness (the
//! paper's APSP motivation), harmonic, and Brandes betweenness — all built
//! on the same BFS substrate.
//!
//! ```sh
//! cargo run --release --example centrality_suite
//! ```

use pbfs::core::analytics::closeness_centrality;
use pbfs::core::centrality::{betweenness_centrality_parallel, harmonic_centrality};
use pbfs::core::prelude::*;
use pbfs::graph::gen;
use pbfs::sched::WorkerPool;

fn top3(name: &str, values: &[f64]) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .total_cmp(&values[a as usize])
            .then(a.cmp(&b))
    });
    idx.truncate(3);
    println!(
        "{name:<12} top-3: {}",
        idx.iter()
            .map(|&v| format!("{v} ({:.4})", values[v as usize]))
            .collect::<Vec<_>>()
            .join(", ")
    );
    idx
}

fn main() {
    let n = 5_000;
    let g = gen::social_network(n, 14, 21);
    println!(
        "social network: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let pool = WorkerPool::new(workers);
    let opts = BfsOptions::default();
    let sources: Vec<u32> = (0..n as u32).collect();

    let t0 = std::time::Instant::now();
    let closeness = closeness_centrality::<1>(&g, &pool, &sources, &opts).values();
    println!(
        "closeness    ({} batched multi-source BFSs) in {:.2}s",
        n,
        t0.elapsed().as_secs_f64()
    );

    let t0 = std::time::Instant::now();
    let harmonic = harmonic_centrality::<1>(&g, &pool, &sources, &opts);
    println!("harmonic     in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = std::time::Instant::now();
    let betweenness = betweenness_centrality_parallel(&g, &sources, workers);
    println!(
        "betweenness  ({} Brandes sweeps) in {:.2}s\n",
        n,
        t0.elapsed().as_secs_f64()
    );

    let c = top3("closeness", &closeness);
    let h = top3("harmonic", &harmonic);
    let b = top3("betweenness", &betweenness);

    // On small-world social networks the measures usually crown related
    // elites: check the top closeness vertex ranks highly elsewhere.
    let rank = |values: &[f64], v: u32| values.iter().filter(|&&x| x > values[v as usize]).count();
    println!(
        "\ntop closeness vertex {}: harmonic rank {}, betweenness rank {}",
        c[0],
        rank(&harmonic, c[0]),
        rank(&betweenness, c[0])
    );
    let _ = (h, b);
}
