//! Closeness centrality over a social network — the all-pairs-shortest-
//! path workload that motivates multi-source BFS in the paper's
//! introduction. One MS-PBFS batch answers 64 sources at once.
//!
//! ```sh
//! cargo run --release --example closeness_centrality
//! ```

use pbfs::core::analytics::closeness_centrality;
use pbfs::core::prelude::*;
use pbfs::graph::gen;
use pbfs::sched::WorkerPool;

fn main() {
    // An LDBC-like social network: communities + hubs, single giant
    // component.
    let n = 20_000;
    let g = gen::social_network(n, 16, 7);
    println!(
        "social network: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let pool = WorkerPool::new(4);
    // Exact closeness needs a BFS from *every* vertex — 20k single-source
    // BFSs, or just 313 multi-source batches.
    let sources: Vec<u32> = (0..n as u32).collect();
    let t0 = std::time::Instant::now();
    let result = closeness_centrality::<1>(&g, &pool, &sources, &BfsOptions::default());
    println!(
        "computed exact closeness for {} sources in {:.2}s ({} batches of 64)",
        n,
        t0.elapsed().as_secs_f64(),
        n.div_ceil(64),
    );

    println!("top 10 most central vertices:");
    for (v, c) in result.top_k(10) {
        println!("  vertex {v:>6}  closeness {c:.4}  degree {}", g.degree(v));
    }

    // Sanity: the most central vertices should be far better connected
    // than average.
    let avg_degree = g.num_directed_edges() as f64 / g.num_vertices() as f64;
    let top = result.top_k(10);
    let top_avg: f64 = top.iter().map(|&(v, _)| g.degree(v) as f64).sum::<f64>() / top.len() as f64;
    println!("average degree {avg_degree:.1}, top-10 average degree {top_avg:.1}");
}
